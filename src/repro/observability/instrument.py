"""Executor instrumentation: per-operator runtime statistics.

An :class:`ExecutionCollector` is handed to
:meth:`repro.engine.executor.Executor.execute`; the executor then records,
for every operator materialization, the rows produced, the number of chunks
(invocations), and the inclusive wall time.  ``Database.explain(sql,
analyze=True)`` runs a query under a collector and annotates the plan tree
with the actual counts — the classic EXPLAIN ANALYZE surface.

Operators the executor *fuses* into a parent (the pipelined limit chain,
block-pruned filtered scans, limited scans) never materialize on their own
and are annotated ``(fused into parent)`` — which is itself useful signal:
it shows the engine's pipelining at work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..algebra import ops


@dataclass
class OperatorStats:
    """Runtime statistics for one plan operator."""

    label: str
    rows_out: int = 0
    chunks: int = 0       # materialization count (invocations)
    elapsed_s: float = 0.0  # inclusive of children
    is_scan: bool = False


@dataclass
class ExecutionCollector:
    """Accumulates per-operator stats during one (or more) executions.

    Keyed by operator object identity: plans are trees of distinct nodes,
    so ``id(op)`` is a stable key for the lifetime of the plan.
    """

    _stats: dict[int, OperatorStats] = field(default_factory=dict)
    root: object = None       # the plan tree actually executed
    elapsed_s: float = 0.0    # total execution wall time
    result_rows: int = 0

    def record(self, op, rows: int, elapsed_s: float) -> None:
        stats = self._stats.get(id(op))
        if stats is None:
            stats = OperatorStats(op.label(), is_scan=isinstance(op, ops.Scan))
            self._stats[id(op)] = stats
        stats.rows_out += rows
        stats.chunks += 1
        stats.elapsed_s += elapsed_s

    def stats_for(self, op) -> OperatorStats | None:
        return self._stats.get(id(op))

    def rows_scanned(self) -> int:
        """Total rows produced by Scan operators (post-MVCC visibility)."""
        return sum(s.rows_out for s in self._stats.values() if s.is_scan)

    def operator_count(self) -> int:
        return len(self._stats)

    def annotation(self, op) -> str:
        """The EXPLAIN ANALYZE suffix for one plan node."""
        stats = self._stats.get(id(op))
        if stats is None:
            return "(fused into parent)"
        loops = f" loops={stats.chunks}" if stats.chunks > 1 else ""
        return (
            f"(actual rows={stats.rows_out}{loops} "
            f"time={stats.elapsed_s * 1e3:.3f}ms)"
        )


def run_analyzed(executor, plan, txn):
    """Execute ``plan`` under a fresh collector; returns (result, collector)."""
    collector = ExecutionCollector()
    start = time.perf_counter()
    result = executor.execute(plan, txn, collector=collector)
    collector.elapsed_s = time.perf_counter() - start
    collector.result_rows = len(result.rows)
    return result, collector


def render_analyze(plan, collector) -> str:
    """EXPLAIN ANALYZE text: the annotated plan tree plus a summary."""
    from ..algebra.printer import explain

    tree = explain(
        collector.root if collector.root is not None else plan,
        annotate=collector.annotation,
    )
    summary = (
        f"execution: {collector.result_rows} row(s) in "
        f"{collector.elapsed_s * 1e3:.3f}ms, "
        f"{collector.rows_scanned()} row(s) scanned"
    )
    return f"{tree}\n{summary}"

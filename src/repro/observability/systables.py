"""The ``sys.*`` schema: virtual tables over live engine state.

Installed once per :class:`~repro.database.Database` by
:func:`install_sys_tables`.  Each table is a
:class:`repro.catalog.systables.SysTable` whose ``rows_fn`` closure reads
the owning database's instrumentation at scan-open time, so::

    select * from sys.query_log order by elapsed_ms desc limit 5
    select m.name, m.value from sys.metrics m where m.kind = 'counter'
    select q.query_id, o.operator, o.rows_out
      from sys.query_log q, sys.operator_stats o
     where q.query_id = o.query_id

parse, bind, optimize, and stream through the ordinary engine pipeline —
the database observing itself with its own query surface (§7's demand
that the optimizer be introspectable at catalog scale).

Tables:

``sys.query_log``       every completed statement: id, SQL, shape hash,
                        per-phase timings, rows, status, error
``sys.operator_stats``  per-operator actuals for every completed query
                        (populated unconditionally; spans stay opt-in)
``sys.plan_feedback``   per-operator est/actual/Q-error and peak bytes
``sys.query_shapes``    per-shape latency p50/p95, EWMA baseline, and
                        regression flag
``sys.metrics``         MetricsRegistry snapshot (one row per metric)
``sys.rewrite_fires``   optimizer rewrite case -> cumulative fire count
``sys.cache_entries``   cached views (SCV/DCV) and their staleness
``sys.wal_segments``    WAL segments (disk) or the in-memory log
``sys.active_spans``    flattened span tree of the current/last trace
``sys.fault_points``    fault-injection points with call/injection counts
``sys.sessions``        live serving sessions: tenant, state, counters
``sys.admission``       admission queue depth plus per-tenant shed /
                        rate-limit / breaker state
``sys.plan_cache``      parameterized plan-cache entries: shape, free /
                        fixed parameter split, hits, approximate bytes
"""

from __future__ import annotations

from .. import datatypes as dt
from ..catalog.schema import ColumnSchema, TableSchema
from ..catalog.systables import SysTable


def _schema(name: str, *columns: tuple[str, object]) -> TableSchema:
    return TableSchema(
        name, [ColumnSchema(cname, ctype, nullable=True) for cname, ctype in columns]
    )


def install_sys_tables(db) -> None:
    """Register the full ``sys.`` namespace on ``db``'s catalog."""
    register = db.catalog.register_system_table

    register(SysTable(
        _schema(
            "sys.query_log",
            ("query_id", dt.varchar(16)),
            ("sql", dt.varchar()),
            ("shape", dt.varchar(16)),
            ("status", dt.varchar(8)),
            ("error", dt.varchar()),
            ("started_at", dt.DOUBLE),
            ("elapsed_ms", dt.DOUBLE),
            ("parse_ms", dt.DOUBLE),
            ("bind_ms", dt.DOUBLE),
            ("optimize_ms", dt.DOUBLE),
            ("execute_ms", dt.DOUBLE),
            ("rows", dt.BIGINT),
            ("operators_before", dt.BIGINT),
            ("operators_after", dt.BIGINT),
            ("rewrite_fires", dt.BIGINT),
        ),
        lambda: [
            (
                e.query_id, e.sql, e.shape, e.status, e.error, e.started_at,
                e.elapsed_s * 1e3,
                None if e.parse_s is None else e.parse_s * 1e3,
                None if e.bind_s is None else e.bind_s * 1e3,
                None if e.optimize_s is None else e.optimize_s * 1e3,
                None if e.execute_s is None else e.execute_s * 1e3,
                e.rows, e.operators_before, e.operators_after, e.rewrite_fires,
            )
            for e in db.query_log.entries()
        ],
    ))

    # Per-operator actuals for every completed query — populated
    # unconditionally by the plan-feedback collector (span tracing is no
    # longer a prerequisite; disable with Database(plan_feedback=False)).
    register(SysTable(
        _schema(
            "sys.operator_stats",
            ("query_id", dt.varchar(16)),
            ("operator", dt.varchar()),
            ("rows_out", dt.BIGINT),
            ("batches", dt.BIGINT),
            ("elapsed_ms", dt.DOUBLE),
            ("is_scan", dt.BOOLEAN),
            ("early_terminated", dt.BOOLEAN),
            ("kernel_calls", dt.BIGINT),
            ("kernel_ms", dt.DOUBLE),
            ("rows_selected", dt.BIGINT),
            ("dict_compares", dt.BIGINT),
            ("heap_evictions", dt.BIGINT),
        ),
        lambda: [
            (
                o.query_id, o.operator, o.rows_out, o.batches,
                o.elapsed_s * 1e3, o.is_scan, o.early_terminated,
                o.kernel_calls, o.kernel_s * 1e3, o.rows_selected,
                o.dict_compares, o.heap_evictions,
            )
            for o in db.query_log.operator_rows()
        ],
    ))

    register(SysTable(
        _schema(
            "sys.plan_feedback",
            ("query_id", dt.varchar(16)),
            ("op_index", dt.BIGINT),
            ("operator", dt.varchar()),
            ("kind", dt.varchar(24)),
            ("est_rows", dt.DOUBLE),
            ("actual_rows", dt.BIGINT),
            ("qerror", dt.DOUBLE),
            ("peak_bytes", dt.BIGINT),
            ("early_terminated", dt.BOOLEAN),
            ("never_executed", dt.BOOLEAN),
        ),
        lambda: [
            (
                f.query_id, f.op_index, f.operator, f.kind, f.est_rows,
                f.actual_rows, f.qerror, f.peak_bytes, f.early_terminated,
                f.never_executed,
            )
            for f in db.query_log.feedback_rows()
        ],
    ))

    def _shape_rows() -> list[tuple]:
        # Baselines are computed lazily: fold in any log entries appended
        # since the last scan, then snapshot.
        db.shape_baselines.sync(db.query_log)
        return db.shape_baselines.rows()

    register(SysTable(
        _schema(
            "sys.query_shapes",
            ("shape", dt.varchar(16)),
            ("example_sql", dt.varchar()),
            ("count", dt.BIGINT),
            ("p50_ms", dt.DOUBLE),
            ("p95_ms", dt.DOUBLE),
            ("baseline_ms", dt.DOUBLE),
            ("last_ms", dt.DOUBLE),
            ("regressed", dt.BOOLEAN),
        ),
        _shape_rows,
    ))

    register(SysTable(
        _schema(
            "sys.metrics",
            ("name", dt.varchar()),
            ("kind", dt.varchar(9)),
            ("value", dt.DOUBLE),
            ("count", dt.BIGINT),
            ("mean", dt.DOUBLE),
            ("p50", dt.DOUBLE),
            ("p95", dt.DOUBLE),
            ("max", dt.DOUBLE),
        ),
        lambda: _metric_rows(db.metrics),
    ))

    register(SysTable(
        _schema(
            "sys.rewrite_fires",
            ("rewrite_case", dt.varchar()),
            ("fires", dt.BIGINT),
        ),
        lambda: _rewrite_rows(db.metrics),
    ))

    register(SysTable(
        _schema(
            "sys.cache_entries",
            ("name", dt.varchar()),
            ("kind", dt.varchar(8)),
            ("query_sql", dt.varchar()),
            ("base_tables", dt.varchar()),
            ("refresh_count", dt.BIGINT),
            ("stale", dt.BOOLEAN),
        ),
        lambda: _cache_rows(db),
    ))

    register(SysTable(
        _schema(
            "sys.wal_segments",
            ("segment", dt.varchar()),
            ("bytes", dt.BIGINT),
            ("records", dt.BIGINT),
            ("durable", dt.BOOLEAN),
        ),
        lambda: [] if db.wal is None else db.wal.segment_info(),
    ))

    register(SysTable(
        _schema(
            "sys.active_spans",
            ("trace_id", dt.BIGINT),
            ("span_id", dt.BIGINT),
            ("parent_id", dt.BIGINT),
            ("name", dt.varchar()),
            ("query_id", dt.varchar(16)),
            ("duration_ms", dt.DOUBLE),
            ("events", dt.BIGINT),
        ),
        lambda: _span_rows(db.spans),
    ))

    register(SysTable(
        _schema(
            "sys.fault_points",
            ("point", dt.varchar()),
            ("armed", dt.BOOLEAN),
            ("calls", dt.BIGINT),
            ("injections", dt.BIGINT),
        ),
        lambda: db.faults.point_stats(),
    ))

    register(SysTable(
        _schema(
            "sys.sessions",
            ("session_id", dt.varchar(16)),
            ("tenant", dt.varchar()),
            ("state", dt.varchar(8)),
            ("opened_at", dt.DOUBLE),
            ("queries_run", dt.BIGINT),
            ("errors", dt.BIGINT),
            ("last_query_id", dt.varchar(16)),
            ("txn_open", dt.BOOLEAN),
        ),
        lambda: _session_rows(db),
    ))

    register(SysTable(
        _schema(
            "sys.admission",
            ("tenant", dt.varchar()),
            ("queued", dt.BIGINT),
            ("running", dt.BIGINT),
            ("max_concurrent", dt.BIGINT),
            ("queue_capacity", dt.BIGINT),
            ("admitted", dt.BIGINT),
            ("shed", dt.BIGINT),
            ("rate_limited", dt.BIGINT),
            ("timeouts", dt.BIGINT),
            ("errors", dt.BIGINT),
            ("breaker_state", dt.varchar(9)),
            ("breaker_rejects", dt.BIGINT),
        ),
        lambda: _admission_rows(db),
    ))

    register(SysTable(
        _schema(
            "sys.plan_cache",
            ("shape", dt.varchar()),
            ("param_types", dt.varchar()),
            ("params", dt.BIGINT),
            ("free_params", dt.BIGINT),
            ("fixed_values", dt.varchar()),
            ("tables", dt.varchar()),
            ("hits", dt.BIGINT),
            ("operators", dt.BIGINT),
            ("approx_bytes", dt.BIGINT),
            ("has_physical", dt.BOOLEAN),
            ("created_at", dt.DOUBLE),
            ("last_used_at", dt.DOUBLE),
        ),
        lambda: _plan_cache_rows(db),
    ))


def _metric_rows(metrics) -> list[tuple]:
    from .metrics import Counter, Gauge

    rows = []
    for name, metric in metrics.items():
        if isinstance(metric, (Counter, Gauge)):
            kind = "counter" if isinstance(metric, Counter) else "gauge"
            rows.append((name, kind, float(metric.value), None, None, None, None, None))
        else:
            summary = metric.summary()
            rows.append((
                name, "histogram", float(summary["sum"]), summary["count"],
                summary["mean"], summary["p50"], summary["p95"], summary["max"],
            ))
    return rows


def _rewrite_rows(metrics) -> list[tuple]:
    prefix = "optimizer.rewrites."
    from .metrics import Counter

    return [
        (name[len(prefix):], metric.value)
        for name, metric in metrics.items()
        if name.startswith(prefix) and isinstance(metric, Counter)
    ]


def _cache_rows(db) -> list[tuple]:
    manager = getattr(db, "cached_views", None)
    if manager is None:
        return []
    rows = []
    for info in manager.infos():
        rows.append((
            info.name, info.kind, info.query_sql, ",".join(info.base_tables),
            info.refresh_count, manager.is_stale(info.name),
        ))
    return rows


def _plan_cache_rows(db) -> list[tuple]:
    cache = getattr(db, "plan_cache", None)
    if cache is None:
        return []
    return [
        (
            entry.shape,
            ",".join(str(t) for t in entry.param_types),
            len(entry.param_types),
            len(entry.free_slots),
            ",".join(f"${slot}={value!r}" for slot, value in entry.fixed_values),
            ",".join(entry.tables),
            entry.hits,
            entry.operators_after,
            entry.approx_bytes,
            entry.physical is not None,
            entry.created_at,
            entry.last_used_at,
        )
        for entry in cache.entries()
    ]


def _session_rows(db) -> list[tuple]:
    serving = getattr(db, "serving", None)
    if serving is None:
        return []
    return [
        (
            s.session_id, s.tenant, s.state, s.opened_at, s.queries_run,
            s.errors, s.last_query_id, s.txn_open,
        )
        for s in serving.sessions()
    ]


def _admission_rows(db) -> list[tuple]:
    serving = getattr(db, "serving", None)
    if serving is None:
        return []
    snap = serving.admission.snapshot()
    # One global row (tenant '*') carries the queue columns; one row per
    # tenant carries the counters and breaker state.
    rows = [(
        "*", snap["queued"], snap["running"], snap["max_concurrent"],
        snap["queue_capacity"], None, None, None, None, None, None, None,
    )]
    for state in serving.tenants.states():
        rows.append((
            state.name, None, None, None, None,
            state.admitted, state.shed, state.rate_limited, state.timeouts,
            state.errors, state.breaker.state, state.breaker_rejects,
        ))
    return rows


def _span_rows(tracer) -> list[tuple]:
    root = tracer.root() or tracer.last_root
    if root is None:
        return []
    rows = []
    for span in root.walk():
        duration = span.duration_s
        rows.append((
            span.trace_id, span.span_id, span.parent_id, span.name,
            span.attributes.get("query_id"),
            None if duration is None else duration * 1e3,
            len(span.events),
        ))
    return rows

"""Telemetry export: Prometheus text format and JSON.

Renders a :class:`~repro.observability.metrics.MetricsRegistry` in the
Prometheus exposition format (version 0.0.4 — what every scraper speaks)
and as JSON, and serializes span trees for external tooling.  The dotted
internal metric names map onto Prometheus conventions:

- ``queries.executed`` (counter)  -> ``repro_queries_executed_total``
- ``queries.latency_s`` (histogram) -> a summary family:
  ``repro_queries_latency_s{quantile="0.5"}`` / ``{quantile="0.95"}``
  plus ``_sum`` and ``_count``
- ``optimizer.rewrites.AJ 2a`` and friends collapse into one labeled
  family: ``repro_optimizer_rewrites_total{case="AJ 2a"}`` (the case
  names contain spaces, which Prometheus only allows in label values).
"""

from __future__ import annotations

import json
import math
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_REWRITE_PREFIX = "optimizer.rewrites."


def _prom_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_NAME_OK.sub('_', name)}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """The ``/metrics`` payload: one TYPE-annotated family per metric."""
    lines: list[str] = []
    rewrite_lines: list[str] = []
    for name, metric in registry.items():
        if isinstance(metric, Counter) and name.startswith(_REWRITE_PREFIX):
            case = name[len(_REWRITE_PREFIX):]
            family = f"{namespace}_optimizer_rewrites_total"
            rewrite_lines.append(
                f'{family}{{case="{_escape_label(case)}"}} {metric.value}'
            )
            continue
        if isinstance(metric, Counter):
            prom = _prom_name(name, namespace) + "_total"
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {metric.value}")
        elif isinstance(metric, Gauge):
            prom = _prom_name(name, namespace)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            prom = _prom_name(name, namespace)
            summary = metric.summary()
            lines.append(f"# TYPE {prom} summary")
            if summary["count"]:
                lines.append(
                    f'{prom}{{quantile="0.5"}} {_prom_value(summary["p50"])}'
                )
                lines.append(
                    f'{prom}{{quantile="0.95"}} {_prom_value(summary["p95"])}'
                )
            lines.append(f"{prom}_sum {_prom_value(summary['sum'])}")
            lines.append(f"{prom}_count {summary['count']}")
    if rewrite_lines:
        family = f"{namespace}_optimizer_rewrites_total"
        lines.append(f"# TYPE {family} counter")
        lines.extend(sorted(rewrite_lines))
    return "\n".join(lines) + "\n" if lines else "# (no metrics recorded)\n"


def render_metrics_json(registry: MetricsRegistry, indent: int = 1) -> str:
    """The snapshot as JSON (``repro metrics --format json``)."""
    return json.dumps(registry.snapshot(), indent=indent, default=str)


def render_spans_json(root, indent: int = 1) -> str:
    """One span tree as JSON (``repro trace --json`` / the ``/trace``
    endpoint)."""
    return json.dumps(root.to_dict(), indent=indent, default=str)

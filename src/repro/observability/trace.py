"""Rewrite tracing: which optimizations fired, where, and why.

The paper's evidence is *plan-shape* evidence — Tables 1-4 record which
rewrites (UAJ, limit pushdown, ASJ, the Union All interplay) fire per
engine.  This module makes the same provenance observable on our own
optimizer: a :class:`QueryTrace` rides through the pipeline and every rule
module records, per fixpoint iteration, the passes it ran and the *named*
rewrite cases that fired (``AJ 1a``, ``AJ 2a``, ``ASJ``, ``union-uaj``,
``limit-pushdown-aj``, ...).

Three trace levels keep the hot path honest:

- :data:`NULL_TRACE` — the no-op default.  Rules call ``trace.rewrite(...)``
  unconditionally; on the null trace that is a single no-op method call at
  *rewrite-fire* sites only (never per row), so disabled tracing costs
  nothing measurable.
- :class:`RewriteTally` — counting-only.  Aggregates case -> fire-count and
  the iteration count without building event objects; the
  :class:`~repro.observability.metrics.MetricsRegistry` is fed from this.
- :class:`QueryTrace` — full structured events plus a text report.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One structured trace event.

    ``kind`` is one of:

    - ``"rewrite"``   — a named rewrite case fired (``name`` is the case);
    - ``"pass"``      — one optimizer pass ran (``detail`` records whether it
      changed the plan's structural signature and how many operators it
      removed; ``elapsed_s`` its wall time);
    - ``"iteration"`` — one fixpoint iteration finished;
    - ``"warning"``   — an anomaly, e.g. fixpoint non-convergence;
    - ``"execution"`` — runtime annotation attached by EXPLAIN ANALYZE.
    """

    kind: str
    name: str
    iteration: int | None = None
    detail: dict = field(default_factory=dict)
    elapsed_s: float | None = None

    def __str__(self) -> str:
        bits = [self.kind, self.name]
        if self.iteration is not None:
            bits.append(f"iter={self.iteration}")
        if self.elapsed_s is not None:
            bits.append(f"{self.elapsed_s * 1e3:.3f}ms")
        if self.detail:
            bits.append(" ".join(f"{k}={v}" for k, v in self.detail.items()))
        return " ".join(bits)


class NullTrace:
    """The zero-cost default: every hook is a no-op.

    ``enabled`` is False, so the pipeline skips per-pass timing and
    signature diffing entirely; the only residual cost of tracing is a
    no-op method call each time a rewrite actually fires.
    """

    enabled = False

    def rewrite(self, case: str, **detail) -> None:
        pass

    def begin_iteration(self, index: int) -> None:
        pass

    def end_iteration(self, index: int, changed: bool) -> None:
        pass

    def record_pass(self, name: str, iteration: int, changed: bool,
                    elapsed_s: float, operators_removed: int = 0) -> None:
        pass

    def warning(self, message: str) -> None:
        pass


NULL_TRACE = NullTrace()


class RewriteTally(NullTrace):
    """Counting-only trace: cheap enough to run on every optimization.

    Tracks case -> fire count, iterations run, and convergence — exactly
    what the metrics registry wants — without allocating event objects.
    """

    __slots__ = ("rewrite_counts", "iterations_run", "converged")

    def __init__(self) -> None:
        self.rewrite_counts: dict[str, int] = {}
        self.iterations_run = 0
        self.converged = True

    def rewrite(self, case: str, **detail) -> None:
        self.rewrite_counts[case] = self.rewrite_counts.get(case, 0) + 1

    def begin_iteration(self, index: int) -> None:
        self.iterations_run = index + 1

    def warning(self, message: str) -> None:
        self.converged = False

    def fired_cases(self) -> set[str]:
        return set(self.rewrite_counts)

    def fired(self, case: str) -> bool:
        return case in self.rewrite_counts


class QueryTrace(RewriteTally):
    """Full rewrite provenance for one optimized query.

    Example::

        db = Database()
        db.tracing = True
        db.query("select o.o_orderkey from orders o left outer join ...")
        trace = db.last_trace
        trace.fired("AJ 2a")          # -> True
        trace.rewrite_counts          # {"AJ 2a": 1}
        print(trace.report())         # human-readable per-iteration log
    """

    __slots__ = ("sql", "profile", "events", "execution", "span_root",
                 "query_id", "_iteration")
    enabled = True

    def __init__(self, sql: str | None = None, profile: str | None = None):
        super().__init__()
        self.sql = sql
        self.profile = profile
        self.events: list[TraceEvent] = []
        self.execution = None  # ExecutionCollector, attached by EXPLAIN ANALYZE
        self.span_root = None  # Span tree root, attached when span tracing ran
        self.query_id: str | None = None  # joins against sys.query_log
        self._iteration: int | None = None

    # -- recording hooks ----------------------------------------------------

    def rewrite(self, case: str, **detail) -> None:
        super().rewrite(case)
        self.events.append(TraceEvent("rewrite", case, self._iteration, detail))

    def begin_iteration(self, index: int) -> None:
        super().begin_iteration(index)
        self._iteration = index

    def end_iteration(self, index: int, changed: bool) -> None:
        self.events.append(
            TraceEvent("iteration", f"iteration {index}", index, {"changed": changed})
        )

    def record_pass(self, name: str, iteration: int, changed: bool,
                    elapsed_s: float, operators_removed: int = 0) -> None:
        detail = {"changed": changed}
        if operators_removed:
            detail["operators_removed"] = operators_removed
        self.events.append(TraceEvent("pass", name, iteration, detail, elapsed_s))

    def warning(self, message: str) -> None:
        super().warning(message)
        self.events.append(TraceEvent("warning", message, self._iteration))

    # -- queries over the event log -----------------------------------------

    def events_of(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def passes(self) -> list[TraceEvent]:
        return self.events_of("pass")

    def to_dict(self, spans: bool = False) -> dict:
        """JSON-friendly structure (used by the benchmark trace dumps).

        ``spans=True`` embeds the span tree when one was recorded; off by
        default so the benchmark dumps stay free of wall-clock noise.
        """
        out = self._base_dict()
        if spans and self.span_root is not None:
            out["spans"] = self.span_root.to_dict()
        return out

    def _base_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "sql": self.sql,
            "profile": self.profile,
            "iterations": self.iterations_run,
            "converged": self.converged,
            "rewrites": dict(self.rewrite_counts),
            "events": [
                {
                    "kind": e.kind,
                    "name": e.name,
                    "iteration": e.iteration,
                    "detail": e.detail,
                }
                for e in self.events
            ],
        }

    def report(self) -> str:
        """Render the trace as an indented text log."""
        lines = []
        header = "query trace"
        if self.profile:
            header += f" (profile={self.profile})"
        lines.append(header)
        if self.sql:
            lines.append(f"  sql: {self.sql}")
        by_iteration: dict[int | None, list[TraceEvent]] = {}
        for event in self.events:
            by_iteration.setdefault(event.iteration, []).append(event)
        for iteration in sorted(by_iteration, key=lambda i: (i is None, i)):
            if iteration is not None:
                lines.append(f"  iteration {iteration}:")
            for event in by_iteration[iteration]:
                indent = "    " if iteration is not None else "  "
                if event.kind == "iteration":
                    continue
                if event.kind == "pass":
                    changed = "changed" if event.detail.get("changed") else "no change"
                    removed = event.detail.get("operators_removed", 0)
                    suffix = f", -{removed} ops" if removed else ""
                    time_s = event.elapsed_s or 0.0
                    lines.append(
                        f"{indent}pass {event.name:<16} {changed}{suffix}"
                        f"  ({time_s * 1e3:.3f}ms)"
                    )
                elif event.kind == "rewrite":
                    detail = "".join(
                        f" {k}={v}" for k, v in event.detail.items()
                    )
                    lines.append(f"{indent}fired {event.name}{detail}")
                elif event.kind == "warning":
                    lines.append(f"{indent}WARNING {event.name}")
        lines.append(
            f"  fixpoint: {self.iterations_run} iteration(s), "
            + ("converged" if self.converged else "NOT converged")
        )
        if self.rewrite_counts:
            fired = ", ".join(
                f"{case} x{n}" for case, n in sorted(self.rewrite_counts.items())
            )
            lines.append(f"  rewrites fired: {fired}")
        else:
            lines.append("  rewrites fired: none")
        return "\n".join(lines)

"""Plan feedback: joining optimizer estimates against execution actuals.

The physical planner stamps every operator with its estimated output rows
(:attr:`repro.engine.physical.PhysicalOp.est_rows`); the execution
collector records the actual rows produced.  This module joins the two
into per-operator :class:`PlanFeedbackRow` records — the engine's measure
of its own estimation quality, in the Q-error metric standard in the
cardinality-estimation literature:

    qerror = max(est, actual) / min(est, actual)

with both sides clamped to >= 1 row so empty results don't divide by
zero (an estimate of 0.3 rows against an actual of 0 rows is a perfect
prediction, not an infinite error).  A Q-error of 1.0 is a perfect
estimate; >= :data:`MISESTIMATE_QERROR` counts as a misestimate and bumps
the per-operator-kind ``optimizer.misestimates.<kind>`` counter.

Rows land in the :class:`repro.observability.querylog.QueryLog` feedback
ring and are queryable as ``sys.plan_feedback``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Q-error at or above which an operator counts as misestimated.  4x is the
#: conventional "the optimizer would likely have picked a different plan"
#: threshold; 1-2x is noise for the System-R style heuristics in cost.py.
MISESTIMATE_QERROR = 4.0


def qerror(est: float, actual: int | float) -> float:
    """Q-error of an estimate: ``max(est, actual) / min(est, actual)``.

    Both sides are clamped to >= 1.0 first (the standard zero-row
    convention), so the result is always >= 1.0 and finite.
    """
    est = max(float(est), 1.0)
    actual = max(float(actual), 1.0)
    return est / actual if est >= actual else actual / est


@dataclass(frozen=True)
class PlanFeedbackRow:
    """One operator's est-vs-actual record for one executed query."""

    query_id: str
    #: Pre-order position in the physical plan (root = 0).
    op_index: int
    #: Full display label, e.g. ``HashJoin[build=right]``.
    operator: str
    #: Operator class, e.g. ``HashJoin`` — the misestimate-counter key.
    kind: str
    est_rows: float | None
    actual_rows: int
    #: None when the plan was not stamped with estimates.
    qerror: float | None
    peak_bytes: int
    #: A downstream consumer closed this operator before it finished — its
    #: actual row count is a lower bound, so its qerror is not comparable.
    early_terminated: bool
    #: The operator never opened at all (e.g. the skipped side of an
    #: answered EXISTS); actual_rows is 0 by construction.
    never_executed: bool


def plan_feedback_rows(query_id: str, collector) -> list[PlanFeedbackRow]:
    """Join estimates and actuals over a collector's executed plan.

    Walks ``collector.root`` (pre-order), producing exactly one row per
    physical operator — including operators that never executed.  Returns
    ``[]`` when the collector has no recorded root plan.
    """
    root = collector.root
    if root is None:
        return []
    rows: list[PlanFeedbackRow] = []
    for index, op in enumerate(root.walk()):
        est = op.est_rows
        stats = collector.stats_for(op)
        if stats is None:
            rows.append(
                PlanFeedbackRow(
                    query_id=query_id,
                    op_index=index,
                    operator=op.label(),
                    kind=type(op).__name__.removesuffix("Exec"),
                    est_rows=est,
                    actual_rows=0,
                    qerror=None if est is None else qerror(est, 0),
                    peak_bytes=0,
                    early_terminated=False,
                    never_executed=True,
                )
            )
            continue
        rows.append(
            PlanFeedbackRow(
                query_id=query_id,
                op_index=index,
                operator=stats.label,
                kind=type(op).__name__.removesuffix("Exec"),
                est_rows=est,
                actual_rows=stats.rows_out,
                qerror=None if est is None else qerror(est, stats.rows_out),
                peak_bytes=stats.peak_bytes,
                early_terminated=stats.early_terminated,
                never_executed=False,
            )
        )
    return rows

"""``repro doctor``: one diagnostic report over the plan-feedback surface.

Pulls the three feedback signals this layer maintains — per-operator
Q-error, per-operator peak memory, and per-shape latency baselines — and
prints the worst offenders of each.  Everything comes from the same rings
that back ``sys.plan_feedback`` / ``sys.query_shapes``, so the report is
exactly what those tables would show, pre-digested for a terminal.
"""

from __future__ import annotations


def doctor_report(db, top: int = 5) -> str:
    """Render the doctor report for ``db`` (top-N per section)."""
    lines: list[str] = ["== repro doctor =="]

    entries = {e.query_id: e for e in db.query_log.entries()}
    feedback = db.query_log.feedback_rows()

    def sql_for(query_id: str) -> str:
        entry = entries.get(query_id)
        if entry is None or entry.sql is None:
            return "<sql not retained>"
        sql = " ".join(entry.sql.split())
        return sql if len(sql) <= 80 else sql[:77] + "..."

    lines.append("")
    lines.append(f"-- top {top} misestimated operators (by Q-error) --")
    misestimated = sorted(
        (
            f for f in feedback
            if f.qerror is not None
            and not f.early_terminated
            and not f.never_executed
        ),
        key=lambda f: f.qerror,
        reverse=True,
    )[:top]
    if not misestimated:
        lines.append("(none)")
    for f in misestimated:
        lines.append(
            f"qerror={f.qerror:8.2f}  est={f.est_rows:10.0f}  "
            f"actual={f.actual_rows:8d}  {f.operator}"
        )
        lines.append(f"    {f.query_id}: {sql_for(f.query_id)}")

    lines.append("")
    lines.append(f"-- top {top} memory-hungriest queries (peak estimated bytes) --")
    by_query: dict[str, int] = {}
    for f in feedback:
        if f.peak_bytes:
            by_query[f.query_id] = by_query.get(f.query_id, 0) + f.peak_bytes
    hungriest = sorted(by_query.items(), key=lambda kv: kv[1], reverse=True)[:top]
    if not hungriest:
        lines.append("(none)")
    for query_id, total in hungriest:
        lines.append(f"peak≈{total / 1024:10.1f}KB  {query_id}: {sql_for(query_id)}")

    lines.append("")
    lines.append(f"-- top {top} kernel-heaviest operators (by vectorized kernel time) --")
    kernel_ops = sorted(
        (o for o in db.query_log.operator_rows() if o.kernel_calls),
        key=lambda o: o.kernel_s,
        reverse=True,
    )[:top]
    if not kernel_ops:
        lines.append("(none)")
    for o in kernel_ops:
        lines.append(
            f"kernel={o.kernel_s * 1e3:8.3f}ms  calls={o.kernel_calls:5d}  "
            f"selected={o.rows_selected:8d}  dict_cmp={o.dict_compares:8d}  "
            f"{o.operator}"
        )
        lines.append(f"    {o.query_id}: {sql_for(o.query_id)}")

    lines.append("")
    lines.append("-- plan cache --")
    cache = getattr(db, "plan_cache", None)
    if cache is None:
        lines.append("(disabled)")
    else:
        lines.append(
            f"entries={len(cache)}/{cache.capacity}  "
            f"hits={cache.hits}  misses={cache.misses}  "
            f"hit_rate={cache.hit_rate * 100:.1f}%  "
            f"evictions={cache.evictions}  "
            f"invalidations={cache.invalidations}  "
            f"uncacheable_shapes={cache.uncacheable}  "
            f"approx={cache.approx_bytes() / 1024:.1f}KB"
        )
        hottest = sorted(cache.entries(), key=lambda e: e.hits, reverse=True)[:top]
        for entry in hottest:
            if not entry.hits:
                continue
            shape = entry.shape if len(entry.shape) <= 80 else entry.shape[:77] + "..."
            lines.append(
                f"hits={entry.hits:6d}  params={len(entry.param_types)}"
                f"(free={len(entry.free_slots)})  ops={entry.operators_after}"
            )
            lines.append(f"    {shape}")

    lines.append("")
    lines.append("-- regressed query shapes (window median > factor x baseline) --")
    db.shape_baselines.sync(db.query_log)
    regressed = db.shape_baselines.regressed_shapes()
    if not regressed:
        lines.append("(none)")
    for stats in regressed:
        example = stats.example_sql or "<unknown>"
        example = " ".join(example.split())
        if len(example) > 80:
            example = example[:77] + "..."
        baseline_ms = (stats.baseline_s or 0.0) * 1e3
        lines.append(
            f"shape={stats.shape}  n={stats.count}  "
            f"p50={stats.p50_s() * 1e3:.3f}ms  baseline={baseline_ms:.3f}ms"
        )
        lines.append(f"    {example}")

    return "\n".join(lines)

"""Per-shape rolling latency baselines and regression detection.

Queries are grouped by their normalized shape hash
(:func:`repro.sql.normalize.shape_hash` — literals stripped, whitespace
collapsed), and each shape keeps:

- a rolling window of recent latencies (p50/p95 come from here);
- an EWMA baseline of the median, updated per completed query;
- a ``regressed`` flag, set when the current window's median exceeds the
  baseline by :attr:`ShapeBaselines.factor` (default 3x) after at least
  :attr:`ShapeBaselines.min_samples` observations.

The tracker consumes the :class:`repro.observability.querylog.QueryLog`
*lazily*: nothing happens on the query hot path.  ``sys.query_shapes``
(and ``repro doctor``) call :meth:`ShapeBaselines.sync` at scan time,
which folds in only the log entries appended since the last sync (keyed
by ``QueryLogEntry.seq``) — shape hashing and EWMA math are paid by the
diagnostic reader, not the workload.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

DEFAULT_ALPHA = 0.2
DEFAULT_REGRESSION_FACTOR = 3.0
DEFAULT_MIN_SAMPLES = 8
DEFAULT_WINDOW = 64


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile over a pre-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


@dataclass
class ShapeStats:
    """Rolling latency state for one query shape."""

    shape: str
    example_sql: str | None = None
    count: int = 0
    last_s: float = 0.0
    #: EWMA of the rolling-window median — the "normal" latency.
    baseline_s: float | None = None
    regressed: bool = False
    recent: deque = field(default_factory=lambda: deque(maxlen=DEFAULT_WINDOW))

    def p50_s(self) -> float:
        return _percentile(sorted(self.recent), 0.50)

    def p95_s(self) -> float:
        return _percentile(sorted(self.recent), 0.95)


class ShapeBaselines:
    """Tracks per-shape latency baselines over the query log.

    Thread-safe: ``sync``/``observe``/``rows`` may be called from scanner
    threads while queries complete on others.
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        factor: float = DEFAULT_REGRESSION_FACTOR,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        metrics=None,
    ):
        self.alpha = alpha
        self.factor = factor
        self.min_samples = min_samples
        self._lock = threading.Lock()
        self._shapes: dict[str, ShapeStats] = {}
        #: Highest QueryLogEntry.seq already folded in.
        self._seen = 0
        self._m_regressions = (
            None if metrics is None
            else metrics.counter("baseline.shape_regressions")
        )

    def configure(
        self, alpha: float | None = None, factor: float | None = None,
        min_samples: int | None = None,
    ) -> None:
        with self._lock:
            if alpha is not None:
                self.alpha = alpha
            if factor is not None:
                self.factor = factor
            if min_samples is not None:
                self.min_samples = min_samples

    def sync(self, query_log) -> None:
        """Fold in query-log entries appended since the last sync.

        Only successful statements with SQL text participate: errors and
        timeouts have pathological latencies that would poison baselines.
        """
        entries = query_log.entries()
        with self._lock:
            for entry in entries:
                if entry.seq <= self._seen:
                    continue
                self._seen = max(self._seen, entry.seq)
                if entry.status != "ok" or entry.sql is None:
                    continue
                shape = entry.shape
                if shape is None:
                    continue
                self._observe_locked(shape, entry.elapsed_s, entry.sql)

    def observe(self, shape: str, elapsed_s: float, sql: str | None = None) -> None:
        """Record one latency sample directly (unit-test entry point)."""
        with self._lock:
            self._observe_locked(shape, elapsed_s, sql)

    def _observe_locked(
        self, shape: str, elapsed_s: float, sql: str | None
    ) -> None:
        stats = self._shapes.get(shape)
        if stats is None:
            stats = ShapeStats(shape=shape)
            self._shapes[shape] = stats
        if stats.example_sql is None:
            stats.example_sql = sql
        stats.count += 1
        stats.last_s = elapsed_s
        stats.recent.append(elapsed_s)
        window_p50 = stats.p50_s()
        # Regression is judged against the baseline *before* this sample
        # contaminates it — a sudden slowdown must not drag its own
        # yardstick upward.
        if (
            stats.baseline_s is not None
            and stats.count >= self.min_samples
            and stats.baseline_s > 0
            and window_p50 > self.factor * stats.baseline_s
        ):
            if not stats.regressed and self._m_regressions is not None:
                self._m_regressions.inc()
            stats.regressed = True
        else:
            stats.regressed = False
        if stats.baseline_s is None:
            stats.baseline_s = window_p50
        else:
            stats.baseline_s += self.alpha * (window_p50 - stats.baseline_s)

    def shapes(self) -> list[ShapeStats]:
        with self._lock:
            return list(self._shapes.values())

    def regressed_shapes(self) -> list[ShapeStats]:
        return [s for s in self.shapes() if s.regressed]

    def rows(self) -> list[tuple]:
        """``sys.query_shapes`` rows: latencies in milliseconds."""
        out = []
        with self._lock:
            for stats in self._shapes.values():
                baseline = stats.baseline_s
                out.append(
                    (
                        stats.shape,
                        stats.example_sql,
                        stats.count,
                        stats.p50_s() * 1e3,
                        stats.p95_s() * 1e3,
                        None if baseline is None else baseline * 1e3,
                        stats.last_s * 1e3,
                        stats.regressed,
                    )
                )
        return out

    def clear(self) -> None:
        with self._lock:
            self._shapes.clear()
            self._seen = 0

"""Hierarchical span tracing across the full query lifecycle.

An OTel-style span model with no external dependencies: a :class:`Span`
has an id, a parent id, wall-clock start/end times, attributes, and
point-in-time events; spans nest into a tree.  The
:class:`~repro.database.Database` facade owns one :class:`SpanTracer` and,
when tracing is enabled, opens a root ``query`` span per statement with
children for

- ``parse``  — lex + parse,
- ``bind``   — name resolution / algebra construction,
- ``optimize`` — the rewrite pipeline, with one child span per fixpoint
  iteration and one per rule pass,
- ``execute``  — plan execution, with one child span per plan operator
  (reconstructed from the EXPLAIN ANALYZE
  :class:`~repro.observability.instrument.ExecutionCollector`).

Storage touchpoints (WAL appends, MVCC commits, NSE block pruning,
cached-view hits/misses) attach *events* to whatever span is current —
cheaper than a full child span, and exactly the shape the OTel API uses
for the same purpose.

**Zero-cost-when-disabled invariant:** every hot-path call site either
checks ``tracer.enabled`` (one attribute load + branch) before doing any
span work, or calls :meth:`SpanTracer.event`, which returns immediately
when disabled.  No span objects, no clock reads, no string formatting
happen on the disabled path.

Example::

    db = Database()
    db.tracing = True
    db.query("select * from journalentryitembrowser limit 5")
    root = db.last_trace.span_root
    root.name                       # "query"
    [c.name for c in root.children] # ["parse", "bind", "optimize", "execute"]
    print(render_span_tree(root))   # indented text tree with timings
"""

from __future__ import annotations

import itertools
import threading
import time

# Events are capped per span so a bulk DML statement under tracing cannot
# balloon memory; the overflow count is kept instead.
MAX_EVENTS_PER_SPAN = 128

_ids = itertools.count(1)


class SpanEvent:
    """A point-in-time annotation on a span (e.g. one WAL append)."""

    __slots__ = ("name", "at_s", "attributes")

    def __init__(self, name: str, at_s: float, attributes: dict):
        self.name = name
        self.at_s = at_s
        self.attributes = attributes

    def to_dict(self, base_s: float) -> dict:
        out = {"name": self.name, "offset_ms": (self.at_s - base_s) * 1e3}
        if self.attributes:
            out["attributes"] = self.attributes
        return out


class Span:
    """One node of a span tree."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "start_s",
                 "end_s", "started_at", "attributes", "events", "children",
                 "dropped_events")

    def __init__(self, name: str, parent: "Span | None" = None,
                 attributes: dict | None = None):
        self.name = name
        self.span_id = next(_ids)
        self.parent_id = None if parent is None else parent.span_id
        self.trace_id = self.span_id if parent is None else parent.trace_id
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        # Wall-clock anchor (perf_counter has an arbitrary epoch).
        self.started_at = time.time()
        self.attributes = attributes if attributes is not None else {}
        self.events: list[SpanEvent] = []
        self.children: list[Span] = []
        self.dropped_events = 0
        if parent is not None:
            parent.children.append(self)

    @property
    def duration_s(self) -> float | None:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def add_event(self, name: str, attributes: dict) -> None:
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.dropped_events += 1
            return
        self.events.append(SpanEvent(name, time.perf_counter(), attributes))

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first span named ``name`` in a depth-first walk."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self, base_s: float | None = None) -> dict:
        """JSON-friendly tree (offsets are relative to the tree root)."""
        if base_s is None:
            base_s = self.start_s
        duration = self.duration_s
        out: dict = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_offset_ms": (self.start_s - base_s) * 1e3,
            "duration_ms": None if duration is None else duration * 1e3,
        }
        if self.parent_id is None:
            out["started_at_unix"] = self.started_at
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.events:
            out["events"] = [e.to_dict(base_s) for e in self.events]
        if self.dropped_events:
            out["dropped_events"] = self.dropped_events
        if self.children:
            out["children"] = [c.to_dict(base_s) for c in self.children]
        return out


class _ActiveSpan:
    """Context manager that ends its span on exit (failure included)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attributes["error"] = exc_type.__name__
        self._tracer.end(self.span)
        return False


class _NullSpanContext:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanTracer:
    """Owns the per-thread span stack and the last finished root tree.

    Disabled by default; :attr:`repro.database.Database.tracing` flips it
    together with rewrite tracing.  All state is per-thread (concurrent
    sessions each build their own tree); :attr:`last_root` keeps the most
    recently *completed* root span for inspection and export.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._local = threading.local()
        self.last_root: Span | None = None

    # -- stack accessors ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def root(self) -> Span | None:
        """The root of the tree currently being built (None when idle)."""
        stack = self._stack()
        return stack[0] if stack else None

    # -- recording ----------------------------------------------------------

    def start(self, name: str, **attributes) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, parent, attributes or None)
        stack.append(span)
        return span

    def end(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        stack = self._stack()
        # Tolerate out-of-order ends (exceptions unwinding several frames).
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.end_s is None:
                dangling.end_s = span.end_s
        if stack:
            stack.pop()
        if not stack:
            self.last_root = span

    def span(self, name: str, **attributes):
        """``with tracer.span("optimize"):`` — no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return _ActiveSpan(self, self.start(name, **attributes))

    def event(self, name: str, **attributes) -> None:
        """Attach an event to the current span; silently dropped when
        disabled or when no span is open (e.g. maintenance work outside a
        traced query)."""
        if not self.enabled:
            return
        current = self.current()
        if current is not None:
            current.add_event(name, attributes)


def attach_operator_spans(parent: Span, collector) -> None:
    """Reconstruct per-operator child spans under an ``execute`` span.

    The executor's :class:`ExecutionCollector` records each physical
    operator's inclusive wall time and output rows but not start offsets,
    so operator spans are *synthetic*: each starts at its parent's start
    and lasts its recorded inclusive time.  Operators whose stream never
    opened (e.g. the skipped side of an answered EXISTS) carry a
    ``skipped`` attribute and zero duration; early-terminated streams
    carry ``early_terminated``.
    """
    plan = collector.root
    if plan is None:
        return

    def build(op, parent_span: Span) -> None:
        stats = collector.stats_for(op)
        span = Span(f"op:{op.label()}", parent_span)
        span.start_s = parent_span.start_s
        span.started_at = parent_span.started_at
        if stats is not None:
            span.end_s = span.start_s + stats.elapsed_s
            span.attributes["rows"] = stats.rows_out
            span.attributes["batches"] = stats.chunks
            if stats.early_terminated:
                span.attributes["early_terminated"] = True
        else:
            span.end_s = span.start_s
            span.attributes["skipped"] = True
        for child in op.children:
            build(child, span)

    build(plan, parent)


def render_span_tree(root: Span) -> str:
    """An indented text rendering of one span tree (CLI surface)."""
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        duration = span.duration_s
        timing = "open" if duration is None else f"{duration * 1e3:.3f}ms"
        attrs = "".join(
            f" {k}={v}" for k, v in span.attributes.items() if k != "sql"
        )
        lines.append(f"{'  ' * depth}{span.name}  {timing}{attrs}")
        for event in span.events:
            detail = "".join(f" {k}={v}" for k, v in event.attributes.items())
            lines.append(f"{'  ' * (depth + 1)}@ {event.name}{detail}")
        if span.dropped_events:
            lines.append(
                f"{'  ' * (depth + 1)}@ ... {span.dropped_events} more event(s)"
            )
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)

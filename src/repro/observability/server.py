"""A stdlib HTTP scrape endpoint for engine telemetry.

Serves, for one :class:`~repro.database.Database`:

- ``/metrics``        Prometheus exposition format (scraper target)
- ``/metrics.json``   the same snapshot as JSON
- ``/trace``          the last completed span tree as JSON (404 if none)
- ``/slow``           the slow-query log as JSON
- ``/healthz``        liveness probe (``ok``)

:class:`MetricsServer` runs a threaded stdlib ``http.server`` in the
background (``port=0`` picks a free port, handy for tests); ``repro
serve-metrics --port N`` is the blocking CLI surface.

Example::

    server = MetricsServer(db, port=0)
    server.start()
    print(server.url)               # http://127.0.0.1:49152
    ... curl $url/metrics ...
    server.close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import render_prometheus

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(db):
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                self._reply(200, PROMETHEUS_CONTENT_TYPE,
                            render_prometheus(db.metrics))
            elif path == "/metrics.json":
                self._reply_json(200, db.metrics.snapshot())
            elif path == "/trace":
                root = db.spans.last_root
                if root is None:
                    self._reply_json(404, {"error": "no trace recorded"})
                else:
                    self._reply_json(200, root.to_dict())
            elif path == "/slow":
                self._reply_json(
                    200, [e.to_dict() for e in db.slow_queries]
                )
            elif path == "/healthz":
                # Always 200: degraded means "answering, with reduced
                # guarantees", not "down" — probes must not kill the pod.
                health = (
                    db.health() if hasattr(db, "health")
                    else {"status": "ok", "reasons": []}
                )
                body = health["status"] + "".join(
                    f"\n{reason}" for reason in health["reasons"]
                )
                self._reply(200, "text/plain; charset=utf-8", body + "\n")
            else:
                self._reply_json(404, {"error": f"no endpoint {path!r}"})

        def _reply(self, status: int, content_type: str, body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _reply_json(self, status: int, data) -> None:
            self._reply(status, "application/json; charset=utf-8",
                        json.dumps(data, indent=1, default=str))

        def log_message(self, format, *args):  # noqa: A002
            pass  # scrapers poll; keep stdout quiet

    return Handler


class MetricsServer:
    """A background scrape endpoint bound to one database."""

    def __init__(self, db, port: int = 9464, host: str = "127.0.0.1"):
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(db))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant (the CLI surface)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

"""Query observability: rewrite tracing, EXPLAIN ANALYZE, engine metrics.

Three coordinated layers (see DESIGN.md, "Observability"):

1. **Rewrite tracing** (:mod:`.trace`) — a :class:`QueryTrace` threaded
   through the optimizer pipeline records which named rewrite cases fired
   (``AJ 1a``, ``AJ 2a``, ``ASJ``, ``union-uaj``, ...) per fixpoint
   iteration, queryable as structured events or rendered as a text report.
2. **Executor instrumentation** (:mod:`.instrument`) — per-operator actual
   rows / chunks / wall time, surfaced by ``Database.explain(sql,
   analyze=True)``.
3. **Metrics** (:mod:`.metrics`) — a thread-safe
   :class:`MetricsRegistry` (counters, gauges, p50/p95 histograms) owned by
   the :class:`~repro.database.Database` facade.

Tracing is zero-cost when disabled: the default :data:`NULL_TRACE` turns
every hook into a no-op called only at rewrite-fire sites.
"""

from .trace import NULL_TRACE, NullTrace, QueryTrace, RewriteTally, TraceEvent  # noqa: F401
from .metrics import Counter, Gauge, Histogram, MetricsRegistry  # noqa: F401
from .instrument import (  # noqa: F401
    ExecutionCollector,
    OperatorStats,
    render_analyze,
    run_analyzed,
)

"""Query observability: spans, rewrite tracing, EXPLAIN ANALYZE, metrics,
telemetry export, and the slow-query log.

Coordinated layers (see DESIGN.md, "Observability"):

1. **Span tracing** (:mod:`.spans`) — a hierarchical, OTel-style
   :class:`SpanTracer` threaded through the full query lifecycle
   (parse -> bind -> optimize -> execute -> storage events), exposed as
   ``db.last_trace.span_root`` when tracing is enabled.
2. **Rewrite tracing** (:mod:`.trace`) — a :class:`QueryTrace` threaded
   through the optimizer pipeline records which named rewrite cases fired
   (``AJ 1a``, ``AJ 2a``, ``ASJ``, ``union-uaj``, ...) per fixpoint
   iteration, queryable as structured events or rendered as a text report.
3. **Executor instrumentation** (:mod:`.instrument`) — per-operator actual
   rows / chunks / wall time, surfaced by ``Database.explain(sql,
   analyze=True)`` and as operator spans.
4. **Metrics** (:mod:`.metrics`) — a thread-safe
   :class:`MetricsRegistry` (counters, gauges, p50/p95 histograms) owned by
   the :class:`~repro.database.Database` facade.
5. **Export** (:mod:`.export` / :mod:`.server`) — Prometheus text format
   and JSON renderers plus a stdlib HTTP scrape endpoint
   (``repro serve-metrics``).
6. **Slow-query log** (:mod:`.slowlog`) — a threshold-gated ring buffer
   capturing SQL, plan, rewrite tally, and span tree per offender.
7. **Plan feedback** (:mod:`.feedback` / :mod:`.baselines` /
   :mod:`.doctor`) — per-operator est/actual/Q-error rows, per-operator
   peak-memory accounting, per-shape rolling latency baselines with
   regression flags, and the ``repro doctor`` report over all three.

Tracing is zero-cost when disabled: the default :data:`NULL_TRACE` turns
every rewrite hook into a no-op, and every span call site checks a single
``enabled`` flag before touching the clock.
"""

from .trace import NULL_TRACE, NullTrace, QueryTrace, RewriteTally, TraceEvent  # noqa: F401
from .metrics import Counter, Gauge, Histogram, MetricsRegistry  # noqa: F401
from .instrument import (  # noqa: F401
    ExecutionCollector,
    OperatorStats,
    render_analyze,
    run_analyzed,
)
from .spans import (  # noqa: F401
    Span,
    SpanEvent,
    SpanTracer,
    attach_operator_spans,
    render_span_tree,
)
from .export import (  # noqa: F401
    render_metrics_json,
    render_prometheus,
    render_spans_json,
)
from .slowlog import SlowQuery, SlowQueryLog  # noqa: F401
from .server import MetricsServer  # noqa: F401
from .querylog import OperatorStatRow, QueryLog, QueryLogEntry  # noqa: F401
from .feedback import (  # noqa: F401
    MISESTIMATE_QERROR,
    PlanFeedbackRow,
    plan_feedback_rows,
    qerror,
)
from .baselines import ShapeBaselines, ShapeStats  # noqa: F401
from .doctor import doctor_report  # noqa: F401

"""A ring-buffer slow-query log.

``Database.slow_queries`` is a :class:`SlowQueryLog`: set
``threshold_s`` to start capturing every query whose wall time meets it.
Each entry keeps the SQL, the optimized plan, the rewrite tally, and —
when span tracing was on — the full span tree, so a slow query can be
diagnosed after the fact without re-running it.  The buffer is bounded
(oldest entries evicted), so a long-lived process cannot leak memory into
its own diagnostics.

Example::

    db.slow_queries.threshold_s = 0.050      # 50ms
    ... serve traffic ...
    for entry in db.slow_queries:
        print(entry.summary())
    print(db.slow_queries.render())
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

DEFAULT_CAPACITY = 32


@dataclass
class SlowQuery:
    """One captured offender."""

    sql: str | None
    elapsed_s: float
    recorded_at: float              # unix timestamp
    plan: str | None = None         # optimized plan, rendered
    rewrite_fires: dict = field(default_factory=dict)
    span_root: object = None        # Span tree when tracing was enabled
    query_id: str | None = None     # joins against sys.query_log / spans
    plan_summary: str | None = None  # one-line physical operator chain

    def summary(self) -> str:
        sql = self.sql or "(unknown sql)"
        if len(sql) > 80:
            sql = sql[:77] + "..."
        prefix = f"[{self.query_id}] " if self.query_id else ""
        line = f"{self.elapsed_s * 1e3:8.3f}ms  {prefix}{sql}"
        if self.plan_summary:
            line += f"\n           plan: {self.plan_summary}"
        return line

    def to_dict(self) -> dict:
        out = {
            "query_id": self.query_id,
            "sql": self.sql,
            "elapsed_ms": self.elapsed_s * 1e3,
            "recorded_at": self.recorded_at,
            "plan": self.plan,
            "plan_summary": self.plan_summary,
            "rewrite_fires": dict(self.rewrite_fires),
        }
        if self.span_root is not None:
            out["spans"] = self.span_root.to_dict()
        return out


class SlowQueryLog:
    """Threshold-gated ring buffer of :class:`SlowQuery` entries.

    Disabled until :attr:`threshold_s` is set (None means off) — the only
    hot-path cost while disabled is one attribute load and comparison.
    """

    def __init__(self, threshold_s: float | None = None,
                 capacity: int = DEFAULT_CAPACITY):
        self.threshold_s = threshold_s
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._entries.maxlen or 0

    def configure(self, threshold_s: float | None = None,
                  capacity: int | None = None) -> None:
        if capacity is not None and capacity != self._entries.maxlen:
            self._entries = deque(self._entries, maxlen=capacity)
        self.threshold_s = threshold_s

    def record(self, sql: str | None, elapsed_s: float,
               plan: str | None = None, rewrite_fires: dict | None = None,
               span_root=None, query_id: str | None = None,
               plan_summary: str | None = None) -> SlowQuery:
        entry = SlowQuery(sql, elapsed_s, time.time(), plan,
                          rewrite_fires or {}, span_root, query_id,
                          plan_summary)
        self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQuery]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def render(self) -> str:
        if not self._entries:
            return "(slow-query log empty)"
        threshold = (
            "disabled" if self.threshold_s is None
            else f"{self.threshold_s * 1e3:g}ms"
        )
        lines = [
            f"slow queries (threshold {threshold}, "
            f"{len(self._entries)}/{self.capacity} kept):"
        ]
        for entry in self._entries:
            lines.append("  " + entry.summary())
        return "\n".join(lines)

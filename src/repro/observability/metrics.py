"""A lightweight, thread-safe engine metrics registry.

Counters, gauges, and windowed histograms (p50/p95/max) with no external
dependencies.  The :class:`~repro.database.Database` facade owns one
registry and wires it into the optimizer (rewrite fires by case, fixpoint
iterations), the executor (queries executed, latency), the WAL (appends),
the MVCC manager (commits/aborts), and the cached-view manager (hits,
refreshes, incremental-maintenance rows).

Example::

    db = Database()
    db.query("select ...")
    db.metrics.snapshot()["queries.executed"]      # -> 1
    db.metrics.counter("optimizer.rewrites.AJ 2a").value
    print(db.metrics.render())                     # text table

Hot paths hold a direct reference to their metric object (``counter.inc()``
is one lock acquisition + one add), not a registry lookup.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (set wins, no aggregation)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Running count/sum/min/max plus a bounded window for percentiles.

    The window keeps the most recent ``window`` observations (a ring
    buffer), so p50/p95 reflect recent behaviour and memory stays bounded
    no matter how many queries run.
    """

    __slots__ = ("name", "_window", "_buf", "_pos", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str, window: int = 4096):
        self.name = name
        self._window = window
        self._buf: list[float] = []
        self._pos = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._buf) < self._window:
                self._buf.append(value)
            else:
                self._buf[self._pos] = value
                self._pos = (self._pos + 1) % self._window

    def percentile(self, p: float) -> float | None:
        """The p-th percentile (0..100) over the retained window.

        Linear interpolation between closest ranks; a single sample is
        every percentile of itself (no interpolation against an implicit
        zero), and p=0 / p=100 are exactly the window min / max.
        """
        with self._lock:
            if not self._buf:
                return None
            ordered = sorted(self._buf)
        return _rank(ordered, p)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def summary(self) -> dict:
        """A self-consistent snapshot: every field is copied under one lock
        acquisition, so concurrent ``observe`` calls can never tear the
        summary (count from one instant, percentiles from another)."""
        with self._lock:
            count = self.count
            total = self.total
            low = self.min
            high = self.max
            ordered = sorted(self._buf)
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": total / count if count else None,
            "p50": _rank(ordered, 50) if ordered else None,
            "p95": _rank(ordered, 95) if ordered else None,
        }


class MetricsRegistry:
    """Name -> metric, with get-or-create accessors.

    Names are dotted paths by convention (``queries.executed``,
    ``optimizer.rewrites.AJ 2a``, ``txn.commits``, ``wal.appends``, ...).
    Asking for an existing name with a different metric type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, window: int = 4096) -> Histogram:
        return self._get_or_create(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def items(self) -> list[tuple[str, object]]:
        """(name, metric) pairs, sorted by name — the typed view the
        exporters need (``snapshot`` erases counter-vs-gauge)."""
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> dict[str, object]:
        """All metrics as plain values: counters/gauges -> number,
        histograms -> summary dict.

        The registry lock is held for the whole pass, so the snapshot is a
        single consistent copy of the metric *set*: a metric registered by
        a concurrent writer is either fully present or fully absent, never
        half-initialized.  Individual values are read under each metric's
        own lock (metric locks never wait on the registry lock, so the
        ordering is deadlock-free), and :meth:`Histogram.summary` is itself
        a single-lock copy — no torn count/percentile pairs.
        """
        with self._lock:
            out: dict[str, object] = {}
            for name, metric in sorted(self._metrics.items()):
                if isinstance(metric, (Counter, Gauge)):
                    out[name] = metric.value
                else:
                    assert isinstance(metric, Histogram)
                    out[name] = metric.summary()
            return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def render(self) -> str:
        """A text table of the snapshot (the ``python -m repro metrics``
        surface)."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        lines = []
        width = max(len(name) for name in snap)
        for name, value in snap.items():
            if isinstance(value, dict):
                p50 = value["p50"]
                p95 = value["p95"]
                rendered = (
                    f"count={value['count']} mean={_fmt(value['mean'])} "
                    f"p50={_fmt(p50)} p95={_fmt(p95)} max={_fmt(value['max'])}"
                )
            else:
                rendered = _fmt(value)
            lines.append(f"{name.ljust(width)}  {rendered}")
        return "\n".join(lines)


def _rank(ordered: list[float], p: float) -> float:
    """Percentile over an already-sorted sample (closest-rank, linear
    interpolation)."""
    if len(ordered) == 1:
        return ordered[0]
    position = max(0.0, min(100.0, p)) / 100.0 * (len(ordered) - 1)
    lower = int(position)
    fraction = position - lower
    if fraction == 0.0:
        return ordered[lower]
    return ordered[lower] + (ordered[lower + 1] - ordered[lower]) * fraction


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)

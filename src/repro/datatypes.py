"""SQL type system.

The engine supports a compact but realistic set of SQL types sufficient for
TPC-H-style and S/4-style schemas:

- ``INTEGER`` / ``BIGINT`` — Python ``int``
- ``DECIMAL(p, s)``        — Python :class:`decimal.Decimal` (exact; rounding
  semantics matter for the paper's §7.1 precision-loss experiments)
- ``DOUBLE``               — Python ``float``
- ``VARCHAR(n)``           — Python ``str``
- ``DATE``                 — :class:`datetime.date`
- ``BOOLEAN``              — Python ``bool``

SQL ``NULL`` is represented by Python ``None`` everywhere in the engine.

Types are value objects (frozen dataclasses) compared structurally, which the
binder relies on when unifying branches of ``UNION ALL`` and ``CASE``.
"""

from __future__ import annotations

import datetime
import decimal
from dataclasses import dataclass
from enum import Enum

from .errors import TypeCheckError


class TypeKind(Enum):
    """Enumeration of the supported SQL type families."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DECIMAL = "DECIMAL"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"


_NUMERIC_KINDS = {TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DECIMAL, TypeKind.DOUBLE}

# Widening order used when unifying numeric operands.
_NUMERIC_RANK = {
    TypeKind.INTEGER: 0,
    TypeKind.BIGINT: 1,
    TypeKind.DECIMAL: 2,
    TypeKind.DOUBLE: 3,
}


@dataclass(frozen=True)
class DataType:
    """A concrete SQL type, e.g. ``DECIMAL(15, 2)`` or ``VARCHAR(30)``.

    ``precision``/``scale`` apply to ``DECIMAL``; ``length`` applies to
    ``VARCHAR``.  All other kinds carry no parameters.
    """

    kind: TypeKind
    precision: int | None = None
    scale: int | None = None
    length: int | None = None

    def __str__(self) -> str:
        if self.kind is TypeKind.DECIMAL:
            return f"DECIMAL({self.precision}, {self.scale})"
        if self.kind is TypeKind.VARCHAR and self.length is not None:
            return f"VARCHAR({self.length})"
        return self.kind.value

    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC_KINDS

    def validate(self, value: object) -> object:
        """Coerce ``value`` into this type's Python representation.

        Raises :class:`TypeCheckError` when the value cannot represent this
        type.  ``None`` always passes through (SQL NULL is untyped).
        """
        if value is None:
            return None
        try:
            return _COERCERS[self.kind](self, value)
        except (ValueError, TypeError, decimal.InvalidOperation) as exc:
            raise TypeCheckError(f"cannot coerce {value!r} to {self}") from exc


def _coerce_int(_ty: DataType, value: object) -> int:
    if isinstance(value, bool):
        raise TypeCheckError(f"cannot coerce boolean {value!r} to integer")
    if isinstance(value, int):
        return value
    if isinstance(value, (str, decimal.Decimal)):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise TypeCheckError(f"cannot coerce {value!r} to integer")


def _coerce_decimal(ty: DataType, value: object) -> decimal.Decimal:
    if isinstance(value, bool):
        raise TypeCheckError(f"cannot coerce boolean {value!r} to decimal")
    dec = value if isinstance(value, decimal.Decimal) else decimal.Decimal(str(value))
    if ty.scale is not None:
        quantum = decimal.Decimal(1).scaleb(-ty.scale)
        dec = dec.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
    return dec


def _coerce_double(_ty: DataType, value: object) -> float:
    if isinstance(value, bool):
        raise TypeCheckError(f"cannot coerce boolean {value!r} to double")
    return float(value)  # type: ignore[arg-type]


def _coerce_varchar(ty: DataType, value: object) -> str:
    text = value if isinstance(value, str) else str(value)
    if ty.length is not None and len(text) > ty.length:
        raise TypeCheckError(f"value {text!r} exceeds VARCHAR({ty.length})")
    return text


def _coerce_date(_ty: DataType, value: object) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        return datetime.date.fromisoformat(value)
    raise TypeCheckError(f"cannot coerce {value!r} to date")


def _coerce_bool(_ty: DataType, value: object) -> bool:
    if isinstance(value, bool):
        return value
    raise TypeCheckError(f"cannot coerce {value!r} to boolean")


_COERCERS = {
    TypeKind.INTEGER: _coerce_int,
    TypeKind.BIGINT: _coerce_int,
    TypeKind.DECIMAL: _coerce_decimal,
    TypeKind.DOUBLE: _coerce_double,
    TypeKind.VARCHAR: _coerce_varchar,
    TypeKind.DATE: _coerce_date,
    TypeKind.BOOLEAN: _coerce_bool,
}


# Convenience singletons for the common parameterless shapes.
INTEGER = DataType(TypeKind.INTEGER)
BIGINT = DataType(TypeKind.BIGINT)
DOUBLE = DataType(TypeKind.DOUBLE)
DATE = DataType(TypeKind.DATE)
BOOLEAN = DataType(TypeKind.BOOLEAN)


def decimal_type(precision: int = 15, scale: int = 2) -> DataType:
    """Build a ``DECIMAL(precision, scale)`` type."""
    return DataType(TypeKind.DECIMAL, precision=precision, scale=scale)


def varchar(length: int | None = None) -> DataType:
    """Build a ``VARCHAR(length)`` type (unbounded when ``length`` is None)."""
    return DataType(TypeKind.VARCHAR, length=length)


def common_super_type(left: DataType, right: DataType) -> DataType:
    """Unify two types for arithmetic, comparison, UNION, and CASE branches.

    Numeric types widen along INTEGER -> BIGINT -> DECIMAL -> DOUBLE.  Equal
    kinds unify to the wider parameterization.  Anything else is an error.
    """
    if left.kind == right.kind:
        if left.kind is TypeKind.DECIMAL:
            return DataType(
                TypeKind.DECIMAL,
                precision=max(left.precision or 0, right.precision or 0) or None,
                scale=max(left.scale or 0, right.scale or 0),
            )
        if left.kind is TypeKind.VARCHAR:
            if left.length is None or right.length is None:
                return varchar(None)
            return varchar(max(left.length, right.length))
        return left
    if left.is_numeric and right.is_numeric:
        winner = left if _NUMERIC_RANK[left.kind] >= _NUMERIC_RANK[right.kind] else right
        if winner.kind is TypeKind.DECIMAL:
            # Widening an int into a decimal keeps the decimal's parameters.
            return winner
        return DataType(winner.kind)
    raise TypeCheckError(f"incompatible types: {left} vs {right}")


def type_of_literal(value: object) -> DataType:
    """Infer the SQL type of a Python literal value."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return BIGINT if abs(value) > 2**31 - 1 else INTEGER
    if isinstance(value, decimal.Decimal):
        exponent = value.as_tuple().exponent
        scale = -exponent if isinstance(exponent, int) and exponent < 0 else 0
        return decimal_type(precision=max(len(value.as_tuple().digits), scale + 1), scale=scale)
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return varchar(None)
    if isinstance(value, datetime.date):
        return DATE
    if value is None:
        # NULL literal: callers treat this as "unknown"; VARCHAR is the
        # traditional default and unifies with nothing harmful.
        return varchar(None)
    raise TypeCheckError(f"unsupported literal {value!r}")

"""Plan rendering (EXPLAIN) and plan statistics.

:func:`plan_stats` reports the structural measures the paper quotes for
Fig. 3: number of table instances, joins, Union All / GROUP BY / DISTINCT
operators — both as a plain tree count and as a DAG count where structurally
identical subtrees are shared (SAP HANA "is able to share a subquery in a
query plan, forming a DAG instead of a tree"; unshared, Fig. 3 grows from 47
to 62 table instances).
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import Expr
from .ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalOp,
    Project,
    Scan,
    Sort,
    UnionAll,
)


def explain(op: LogicalOp, show_columns: bool = False, annotate=None) -> str:
    """Render a plan as an indented tree.

    ``annotate``, when given, is a callable ``(node) -> str | None`` whose
    non-empty return is appended to the node's line — EXPLAIN ANALYZE uses
    it to attach actual row counts and timings per operator.
    """
    lines: list[str] = []

    def visit(node: LogicalOp, depth: int) -> None:
        prefix = "  " * depth
        line = f"{prefix}{node.label()}"
        if annotate is not None:
            extra = annotate(node)
            if extra:
                line = f"{line} {extra}"
        lines.append(line)
        if show_columns:
            cols = ", ".join(f"{c.name}#{c.cid}" for c in node.output)
            lines.append(f"{prefix}  -> [{cols}]")
        for child in node.children:
            visit(child, depth + 1)

    visit(op, 0)
    return "\n".join(lines)


def summarize_plan(op, max_length: int = 160) -> str:
    """A one-line nested summary of a plan tree, e.g.
    ``Limit[5](Sort(BatchScan(sys.query_log)))``.

    Works on logical and physical operators alike (both expose ``label()``
    and ``children``); long chains are truncated with an ellipsis so
    slow-query log entries stay single-line.
    """

    def visit(node) -> str:
        label = node.label()
        children = node.children
        if not children:
            return label
        return f"{label}({', '.join(visit(child) for child in children)})"

    line = visit(op)
    if len(line) > max_length:
        line = line[: max_length - 3] + "..."
    return line


@dataclass
class PlanStats:
    """Structural statistics of a logical plan."""

    table_instances: int = 0
    joins: int = 0
    union_alls: int = 0
    union_all_children: int = 0
    group_bys: int = 0
    distincts: int = 0
    filters: int = 0
    projects: int = 0
    sorts: int = 0
    limits: int = 0
    max_depth: int = 0
    shared_table_instances: int = 0  # table instances when identical subtrees share
    shared_joins: int = 0            # joins when identical subtrees share

    def summary(self) -> str:
        return (
            f"{self.shared_table_instances} table instances "
            f"({self.table_instances} unshared), {self.shared_joins} joins "
            f"({self.joins} unshared), "
            f"{self.union_alls} union-all ({self.union_all_children}-way total), "
            f"{self.group_bys} group-by, {self.distincts} distinct, "
            f"{self.filters} filters, depth {self.max_depth}"
        )


def plan_stats(op: LogicalOp) -> PlanStats:
    stats = PlanStats()

    def visit(node: LogicalOp, depth: int) -> None:
        stats.max_depth = max(stats.max_depth, depth)
        if isinstance(node, Scan):
            stats.table_instances += 1
        elif isinstance(node, Join):
            stats.joins += 1
        elif isinstance(node, UnionAll):
            stats.union_alls += 1
            stats.union_all_children += len(node.inputs)
        elif isinstance(node, Aggregate):
            stats.group_bys += 1
        elif isinstance(node, Distinct):
            stats.distincts += 1
        elif isinstance(node, Filter):
            stats.filters += 1
        elif isinstance(node, Project):
            stats.projects += 1
        elif isinstance(node, Sort):
            stats.sorts += 1
        elif isinstance(node, Limit):
            stats.limits += 1
        for child in node.children:
            visit(child, depth + 1)

    visit(op, 0)
    stats.shared_table_instances, stats.shared_joins = _shared_counts(op)
    return stats


def structural_signature(op: LogicalOp) -> str:
    """A name-level structural hash of a subtree, ignoring cids.

    Two subtrees with the same signature compute the same relation (same
    tables, same operations, same column names) and could be DAG-shared.
    """
    if isinstance(op, Scan):
        return f"scan({op.schema.name})"
    label = type(op).__name__
    detail = ""
    if isinstance(op, Filter):
        detail = _expr_signature(op.predicate)
    elif isinstance(op, Join):
        detail = (
            f"{op.join_type.value}|{_expr_signature(op.condition)}|{op.case_join}"
        )
    elif isinstance(op, Project):
        detail = ";".join(f"{c.name}={_expr_signature(e)}" for c, e in op.items)
    elif isinstance(op, Aggregate):
        detail = f"{len(op.group_cids)}|" + ";".join(str(a) for _, a in op.aggs)
    elif isinstance(op, Sort):
        detail = ";".join(f"{k.ascending}" for k in op.keys)
    elif isinstance(op, Limit):
        detail = f"{op.limit}|{op.offset}"
    children = ",".join(structural_signature(c) for c in op.children)
    return f"{label}[{detail}]({children})"


def _expr_signature(expr: Expr | None) -> str:
    """Expression signature with cids erased (names retained)."""
    if expr is None:
        return ""
    text = str(expr)
    # Strip '#<cid>' markers so structurally equal subtrees over different
    # scan instances compare equal.
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "#":
            i += 1
            while i < len(text) and text[i].isdigit():
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _shared_counts(op: LogicalOp) -> tuple[int, int]:
    """(table instances, joins) assuming identical *subqueries* are shared.

    Mirrors the paper's Fig. 3 accounting: SAP HANA shares repeated
    subqueries, forming a DAG; bare table scans are separate instances (the
    paper counts ACDOCA once per occurrence), so deduplication applies only
    to composite subtrees.
    """
    seen: set[str] = set()

    def visit(node: LogicalOp) -> tuple[int, int]:
        if isinstance(node, Scan):
            return 1, 0
        signature = structural_signature(node)
        if signature in seen:
            return 0, 0  # the whole subtree is shared with an earlier occurrence
        seen.add(signature)
        scans = 0
        joins = 1 if isinstance(node, Join) else 0
        for child in node.children:
            child_scans, child_joins = visit(child)
            scans += child_scans
            joins += child_joins
        return scans, joins

    return visit(op)

"""Logical relational operators.

Operators form trees (conceptually DAGs — plan statistics report both the
tree and the structurally-shared size, matching the paper's Fig. 3 narrative
of 62 unshared vs 47 shared table instances).

Invariant maintained by the binder and every rewrite rule: **an operator's
output columns keep their cids across rewrites** for as long as the column
survives, so parent expressions never need patching when a subtree is
simplified.  New columns get fresh cids from :func:`repro.algebra.expr.next_cid`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterator, Sequence

from ..catalog.schema import TableSchema
from ..errors import OptimizerError
from ..sql.ast import JoinCardinality
from .expr import AggCall, ColRef, Expr, next_cid


@dataclass(frozen=True)
class OutputCol:
    """One output column of a logical operator."""

    cid: int
    name: str
    data_type: object  # DataType; loose to avoid import noise in repr
    nullable: bool = True

    def as_ref(self) -> ColRef:
        return ColRef(self.cid, self.name, self.data_type, self.nullable)  # type: ignore[arg-type]

    def renamed(self, name: str) -> "OutputCol":
        return OutputCol(self.cid, name, self.data_type, self.nullable)

    def as_nullable(self) -> "OutputCol":
        return self if self.nullable else OutputCol(self.cid, self.name, self.data_type, True)


class LogicalOp:
    """Base class for logical operators."""

    output: tuple[OutputCol, ...]

    @property
    def children(self) -> tuple["LogicalOp", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        raise NotImplementedError

    # -- column helpers ----------------------------------------------------

    @property
    def output_cids(self) -> frozenset[int]:
        return frozenset(col.cid for col in self.output)

    def find_col(self, cid: int) -> OutputCol:
        for col in self.output:
            if col.cid == cid:
                return col
        raise OptimizerError(f"column #{cid} not in output of {type(self).__name__}")

    def label(self) -> str:
        """Short human-readable description used by EXPLAIN."""
        return type(self).__name__

    def walk(self) -> Iterator["LogicalOp"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(eq=False)
class Scan(LogicalOp):
    """Scan of a base table.  Each Scan is a distinct *table instance*;
    ``instance`` disambiguates multiple scans of the same table, which the
    ASJ rules depend on."""

    schema: TableSchema
    instance: int
    output: tuple[OutputCol, ...]

    # itertools.count, like next_cid(): += on a class attribute is not
    # atomic, and concurrent binds must never hand two scans one instance id.
    _next_instance = itertools.count(1)

    @classmethod
    def create(cls, schema: TableSchema) -> "Scan":
        output = tuple(
            OutputCol(next_cid(), col.name, col.data_type, col.nullable)
            for col in schema.columns
        )
        return cls(schema, next(cls._next_instance), output)

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return ()

    def with_children(self, children: Sequence[LogicalOp]) -> "Scan":
        assert not children
        return self

    def column_cid(self, name: str) -> int:
        lowered = name.lower()
        for col in self.output:
            if col.name == lowered:
                return col.cid
        raise OptimizerError(f"no column {name!r} in scan of {self.schema.name!r}")

    def label(self) -> str:
        return f"Scan({self.schema.name})"


@dataclass(eq=False)
class OneRow(LogicalOp):
    """A single row with no columns: the FROM-less SELECT source."""

    def __post_init__(self) -> None:
        self.output = ()

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return ()

    def with_children(self, children: Sequence[LogicalOp]) -> "OneRow":
        assert not children
        return self

    def label(self) -> str:
        return "OneRow"


@dataclass(eq=False)
class Project(LogicalOp):
    """Projection: each output column is defined by an expression over the
    child's columns."""

    child: LogicalOp
    items: tuple[tuple[OutputCol, Expr], ...]

    def __post_init__(self) -> None:
        self.output = tuple(col for col, _ in self.items)

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def is_identity(self) -> bool:
        """True when this projection just passes the child through unchanged."""
        if len(self.items) != len(self.child.output):
            return False
        return all(
            isinstance(expr, ColRef)
            and expr.cid == child_col.cid
            and col.cid == child_col.cid
            and col.name == child_col.name
            for (col, expr), child_col in zip(self.items, self.child.output)
        )

    def label(self) -> str:
        return f"Project[{len(self.items)} cols]"


@dataclass(eq=False)
class Filter(LogicalOp):
    """Row selection; output columns are exactly the child's."""

    child: LogicalOp
    predicate: Expr

    def __post_init__(self) -> None:
        self.output = self.child.output

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Filter":
        (child,) = children
        return Filter(child, self.predicate)

    def label(self) -> str:
        return f"Filter[{self.predicate}]"


class JoinType(Enum):
    INNER = "INNER"
    LEFT_OUTER = "LEFT OUTER"
    SEMI = "SEMI"    # EXISTS / IN (subquery): output = left columns only
    ANTI = "ANTI"    # NOT EXISTS / NOT IN: output = left columns only


@dataclass(eq=False)
class Join(LogicalOp):
    """Binary join.

    ``declared`` is the §7.3 cardinality specification, trusted (not
    enforced) by the optimizer.  ``case_join`` marks the paper's §6.3 SQL
    extension: semantically a LEFT OUTER join, but with declared ASJ intent —
    the optimizer preserves the augmenter's Union All subgraph and runs the
    extended ASJ recognition on it.  ``null_aware`` applies to ANTI joins
    from ``NOT IN``: a NULL probe value or any NULL in the subquery makes
    membership UNKNOWN, which filters the row.
    """

    join_type: JoinType
    left: LogicalOp
    right: LogicalOp
    condition: Expr | None
    declared: JoinCardinality | None = None
    case_join: bool = False
    null_aware: bool = False

    def __post_init__(self) -> None:
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            self.output = self.left.output
            return
        right_cols = self.right.output
        if self.join_type is JoinType.LEFT_OUTER:
            right_cols = tuple(col.as_nullable() for col in right_cols)
        self.output = self.left.output + right_cols

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "Join":
        left, right = children
        return Join(self.join_type, left, right, self.condition, self.declared,
                    self.case_join, self.null_aware)

    def label(self) -> str:
        kind = "CaseJoin" if self.case_join else self.join_type.value.title().replace(" ", "")
        card = f" {self.declared}" if self.declared else ""
        cond = f" on {self.condition}" if self.condition is not None else ""
        return f"{kind}Join{card}{cond}"


@dataclass(eq=False)
class Aggregate(LogicalOp):
    """Hash aggregation.

    ``group_cids`` reference child output columns (the binder pre-projects
    computed keys); their OutputCols are passed through with unchanged cids,
    which makes "group keys are unique" a trivially sound derivation.
    """

    child: LogicalOp
    group_cids: tuple[int, ...]
    aggs: tuple[tuple[OutputCol, AggCall], ...]

    def __post_init__(self) -> None:
        key_cols = tuple(self.child.find_col(cid) for cid in self.group_cids)
        self.output = key_cols + tuple(col for col, _ in self.aggs)

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_cids, self.aggs)

    def label(self) -> str:
        aggs = ", ".join(str(call) for _, call in self.aggs)
        return f"Aggregate[keys={len(self.group_cids)}; {aggs}]"


@dataclass(eq=False)
class UnionAll(LogicalOp):
    """Bag union of two or more children.

    Output columns have fresh cids; ``child_maps[i][pos]`` is the cid in
    child ``i`` feeding output position ``pos``.
    """

    inputs: tuple[LogicalOp, ...]
    output: tuple[OutputCol, ...]
    child_maps: tuple[tuple[int, ...], ...]

    @classmethod
    def create(cls, inputs: Sequence[LogicalOp], names: Sequence[str] | None = None) -> "UnionAll":
        from ..datatypes import common_super_type

        first = inputs[0]
        arity = len(first.output)
        for child in inputs[1:]:
            if len(child.output) != arity:
                raise OptimizerError("UNION ALL children must have equal arity")
        cols: list[OutputCol] = []
        for pos in range(arity):
            data_type = first.output[pos].data_type
            nullable = any(c.output[pos].nullable for c in inputs)
            for child in inputs[1:]:
                data_type = common_super_type(data_type, child.output[pos].data_type)  # type: ignore[arg-type]
            name = names[pos] if names else first.output[pos].name
            cols.append(OutputCol(next_cid(), name, data_type, nullable))
        child_maps = tuple(
            tuple(child.output[pos].cid for pos in range(arity)) for child in inputs
        )
        return cls(tuple(inputs), tuple(cols), child_maps)

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return self.inputs

    def with_children(self, children: Sequence[LogicalOp]) -> "UnionAll":
        return UnionAll(tuple(children), self.output, self.child_maps)

    def label(self) -> str:
        return f"UnionAll[{len(self.inputs)} children]"


@dataclass(eq=False)
class Distinct(LogicalOp):
    """Duplicate elimination over all output columns."""

    child: LogicalOp

    def __post_init__(self) -> None:
        self.output = self.child.output

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Distinct":
        (child,) = children
        return Distinct(child)


@dataclass(frozen=True)
class SortKey:
    cid: int
    ascending: bool = True


@dataclass(eq=False)
class Sort(LogicalOp):
    """Total order by one or more child columns (NULLs sort last)."""

    child: LogicalOp
    keys: tuple[SortKey, ...]

    def __post_init__(self) -> None:
        self.output = self.child.output

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def label(self) -> str:
        keys = ", ".join(f"#{k.cid}{'' if k.ascending else ' desc'}" for k in self.keys)
        return f"Sort[{keys}]"


@dataclass(eq=False)
class Limit(LogicalOp):
    """LIMIT/OFFSET; the paper's paging-query building block (§4.4)."""

    child: LogicalOp
    limit: int | None
    offset: int = 0

    def __post_init__(self) -> None:
        self.output = self.child.output

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Limit":
        (child,) = children
        return Limit(child, self.limit, self.offset)

    def label(self) -> str:
        return f"Limit[{self.limit} offset {self.offset}]"


def rewrite_op_exprs(op: LogicalOp, fn) -> LogicalOp:
    """Rebuild a plan bottom-up, applying ``fn`` to every held expression.

    ``fn`` receives an expression and returns a (possibly identical)
    expression.  Operators without expressions pass through; children are
    rewritten first.
    """
    children = [rewrite_op_exprs(child, fn) for child in op.children]
    op = op.with_children(children)
    if isinstance(op, Project):
        items = tuple((col, fn(expr)) for col, expr in op.items)
        return Project(op.child, items)
    if isinstance(op, Filter):
        return Filter(op.child, fn(op.predicate))
    if isinstance(op, Join) and op.condition is not None:
        return Join(op.join_type, op.left, op.right, fn(op.condition),
                    op.declared, op.case_join, op.null_aware)
    if isinstance(op, Aggregate):
        aggs = tuple(
            (col, AggCall(call.func,
                          None if call.arg is None else fn(call.arg),
                          call.data_type, call.distinct,
                          call.allow_precision_loss))
            for col, call in op.aggs
        )
        return Aggregate(op.child, op.group_cids, aggs)
    return op


def identity_project(child: LogicalOp, cids: Sequence[int] | None = None) -> Project:
    """Build a pass-through projection over ``child`` (optionally a subset)."""
    cols = child.output if cids is None else tuple(child.find_col(c) for c in cids)
    return Project(child, tuple((col, col.as_ref()) for col in cols))

"""Derived plan properties: unique keys, constant columns, provenance.

This module is the analytical heart of the paper's optimizations:

- **unique keys** decide whether a join is *purely augmentative* (UAJ, §4.2):
  AJ 2a-1 comes from declared PK/UNIQUE constraints, AJ 2a-2 from grouping
  keys, AJ 2a-3 from constant-restricted composite keys, and §6.2's patterns
  from Union All structure (disjoint subsets, branch ids);
- **constant columns** feed AJ 2a-3 and the branch-id union key (Fig. 12b);
- **provenance** traces an output column back to a specific base-table scan
  instance, which the ASJ rules (§5) need to rewire augmenter fields into
  the anchor.

Every derivation step is gated by a named *capability* so the optimizer
profiles of §4.3 (Table 1) can model systems that implement only part of
the reasoning.  :data:`ALL_CAPABILITIES` lists them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..sql.ast import CardinalityBound
from .expr import Call, ColRef, Const, Expr, conjuncts
from .ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    Project,
    Scan,
    Sort,
    UnionAll,
)

# -- capability names ----------------------------------------------------------

CAP_UNIQUE_FROM_PK = "unique_from_pk"
CAP_UNIQUE_FROM_GROUPBY = "unique_from_groupby"
CAP_UNIQUE_VIA_CONST_FILTER = "unique_via_const_filter"
CAP_UNIQUE_THROUGH_JOIN_TABLE = "unique_through_join_table"
CAP_UNIQUE_THROUGH_JOIN_GROUPBY = "unique_through_join_groupby"
CAP_UNIQUE_THROUGH_ORDER_LIMIT = "unique_through_order_limit"
CAP_UNIQUE_FROM_DISTINCT = "unique_from_distinct"
CAP_UNIQUE_THROUGH_UNION_DISJOINT = "unique_through_union_disjoint"
CAP_UNIQUE_THROUGH_UNION_BRANCHID = "unique_through_union_branchid"
CAP_UNIQUE_FROM_DECLARED = "unique_from_declared"

UNIQUENESS_CAPABILITIES = frozenset(
    {
        CAP_UNIQUE_FROM_PK,
        CAP_UNIQUE_FROM_GROUPBY,
        CAP_UNIQUE_VIA_CONST_FILTER,
        CAP_UNIQUE_THROUGH_JOIN_TABLE,
        CAP_UNIQUE_THROUGH_JOIN_GROUPBY,
        CAP_UNIQUE_THROUGH_ORDER_LIMIT,
        CAP_UNIQUE_FROM_DISTINCT,
        CAP_UNIQUE_THROUGH_UNION_DISJOINT,
        CAP_UNIQUE_THROUGH_UNION_BRANCHID,
        CAP_UNIQUE_FROM_DECLARED,
    }
)


@dataclass(frozen=True)
class Provenance:
    """Where an output column's value comes from: a specific scan instance's
    column, possibly NULL-extended by an intervening left outer join."""

    scan: Scan
    column: str
    outer_nulled: bool = False


class DerivationContext:
    """Caps-gated property derivation with per-node memoization."""

    def __init__(self, caps: frozenset[str]):
        self.caps = caps
        # Caches key on id(op) and keep the op alive in the value so a
        # garbage-collected node's id can never be reused for a wrong hit.
        self._keys_cache: dict[int, tuple[LogicalOp, set[frozenset[int]]]] = {}
        self._const_cache: dict[int, tuple[LogicalOp, dict[int, object]]] = {}
        self._prov_cache: dict[int, tuple[LogicalOp, dict[int, Provenance]]] = {}

    def has(self, cap: str) -> bool:
        return cap in self.caps

    # -- unique keys -----------------------------------------------------------

    def unique_keys(self, op: LogicalOp) -> set[frozenset[int]]:
        """All derivable unique keys of ``op``'s output.

        A key is a set of cids such that no two output rows agree on all of
        them with every value non-NULL (the join-matching notion of
        uniqueness: an equi-join on a key matches at most one row).
        """
        cached = self._keys_cache.get(id(op))
        if cached is not None and cached[0] is op:
            return cached[1]
        keys = self._derive_keys(op)
        keys = _minimize(keys)
        self._keys_cache[id(op)] = (op, keys)
        return keys

    def _derive_keys(self, op: LogicalOp) -> set[frozenset[int]]:
        if isinstance(op, Scan):
            if not self.has(CAP_UNIQUE_FROM_PK):
                return set()
            keys: set[frozenset[int]] = set()
            for constraint in op.schema.unique_constraints:
                keys.add(frozenset(op.column_cid(c) for c in constraint.columns))
            return keys
        if isinstance(op, Filter):
            keys = set(self.unique_keys(op.child))
            if self.has(CAP_UNIQUE_VIA_CONST_FILTER):
                consts = frozenset(self.constants(op).keys())
                if consts:
                    for key in list(keys):
                        reduced = key - consts
                        if reduced != key:
                            keys.add(reduced)
            return keys
        if isinstance(op, Project):
            # A child key survives when every key column passes through
            # (possibly under a new cid, e.g. after a union collapse).
            mapping: dict[int, int] = {}
            for col, expr in op.items:
                if isinstance(expr, ColRef) and expr.cid not in mapping:
                    mapping[expr.cid] = col.cid
            keys = set()
            for key in self.unique_keys(op.child):
                if all(cid in mapping for cid in key):
                    keys.add(frozenset(mapping[cid] for cid in key))
            return keys
        if isinstance(op, (Sort, Limit)):
            if not self.has(CAP_UNIQUE_THROUGH_ORDER_LIMIT):
                return set()
            return set(self.unique_keys(op.child))
        if isinstance(op, Distinct):
            keys = set(self.unique_keys(op.child))
            if self.has(CAP_UNIQUE_FROM_DISTINCT):
                keys.add(frozenset(op.output_cids))
            return keys
        if isinstance(op, Aggregate):
            keys = set()
            if self.has(CAP_UNIQUE_FROM_GROUPBY) and op.group_cids:
                keys.add(frozenset(op.group_cids))
                group_set = frozenset(op.group_cids)
                for child_key in self.unique_keys(op.child):
                    if child_key <= group_set:
                        keys.add(child_key)
            return keys
        if isinstance(op, Join):
            return self._derive_join_keys(op)
        if isinstance(op, UnionAll):
            return self._derive_union_keys(op)
        return set()

    def _derive_join_keys(self, op: Join) -> set[frozenset[int]]:
        left_keys = self.unique_keys(op.left)
        if op.join_type in (JoinType.SEMI, JoinType.ANTI):
            # Pure filters over the left side: every left key survives.
            return set(left_keys)
        right_keys = self.unique_keys(op.right)
        left_equi, right_equi = equi_join_cids(op)
        keys: set[frozenset[int]] = set()

        declared_right_one = self.has(CAP_UNIQUE_FROM_DECLARED) and (
            op.declared is not None
            and op.declared.right in (CardinalityBound.ONE, CardinalityBound.EXACT_ONE)
        )
        declared_left_one = self.has(CAP_UNIQUE_FROM_DECLARED) and (
            op.declared is not None
            and op.declared.left in (CardinalityBound.ONE, CardinalityBound.EXACT_ONE)
        )

        # Left keys survive when the right side matches at most once (no
        # duplication; a subset of unique rows stays unique, so filtering is
        # irrelevant for the *key* property).  The capability gating the step
        # depends on what the preserved side looks like — systems differ in
        # whether they track uniqueness through joins over plain tables vs.
        # over aggregated subqueries (Table 1's 1a/2a/3a split).
        if left_keys and (declared_right_one or any(k <= frozenset(right_equi) for k in right_keys)):
            cap = (
                CAP_UNIQUE_THROUGH_JOIN_GROUPBY
                if _contains_aggregate(op.left)
                else CAP_UNIQUE_THROUGH_JOIN_TABLE
            )
            if self.has(cap):
                keys |= left_keys
        if right_keys and (declared_left_one or any(k <= frozenset(left_equi) for k in left_keys)):
            cap = (
                CAP_UNIQUE_THROUGH_JOIN_GROUPBY
                if _contains_aggregate(op.right)
                else CAP_UNIQUE_THROUGH_JOIN_TABLE
            )
            if self.has(cap):
                keys |= right_keys
        # Composite keys identify the (l, r) pair; always sound.
        for lk in left_keys:
            for rk in right_keys:
                keys.add(lk | rk)
        return keys

    def _derive_union_keys(self, op: UnionAll) -> set[frozenset[int]]:
        keys: set[frozenset[int]] = set()
        if self.has(CAP_UNIQUE_THROUGH_UNION_DISJOINT):
            keys |= self._union_disjoint_keys(op)
        if self.has(CAP_UNIQUE_THROUGH_UNION_BRANCHID):
            keys |= self._union_branchid_keys(op)
        return keys

    def _union_disjoint_keys(self, op: UnionAll) -> set[frozenset[int]]:
        """Fig. 12a: Union All of *disjoint selections over the same core*
        preserves the core's keys.

        Two recognizers: (a) children peel (Project/Filter)* down to scans of
        the same table — the common shape after view inlining and filter
        pushdown; (b) children are Filter stacks over structurally identical
        complex cores.
        """
        keys = self._union_disjoint_scan_keys(op)
        if keys:
            return keys
        from .printer import structural_signature

        cores: list[LogicalOp] = []
        predicate_sets: list[list[Expr]] = []
        for child in op.inputs:
            core, predicates = _strip_filters(child)
            cores.append(core)
            predicate_sets.append(predicates)
        signatures = {structural_signature(core) for core in cores}
        if len(signatures) != 1:
            return set()
        if not _pairwise_disjoint(predicate_sets, cores):
            return set()
        # Map a core key (cids of child 0's core) through the union output.
        first_core = cores[0]
        first_map = op.child_maps[0]
        # Output position for each core cid of child 0 (filters pass cids
        # through unchanged, so the child cid IS the core cid).
        pos_of_cid = {cid: pos for pos, cid in enumerate(first_map)}
        # Positions must carry the *same* core column in every child:
        # identical structure means positional correspondence.
        keys: set[frozenset[int]] = set()
        core_index_of = {c.cid: i for i, c in enumerate(first_core.output)}
        for key in self.unique_keys(first_core):
            positions = []
            valid = True
            for cid in key:
                pos = pos_of_cid.get(cid)
                if pos is None:
                    valid = False
                    break
                # Verify positional correspondence in every other child.
                core_pos = core_index_of.get(cid)
                if core_pos is None:
                    valid = False
                    break
                for child_index in range(1, len(op.inputs)):
                    mapped = op.child_maps[child_index][pos]
                    other_core = cores[child_index]
                    if (
                        core_pos >= len(other_core.output)
                        or other_core.output[core_pos].cid != mapped
                    ):
                        valid = False
                        break
                if not valid:
                    break
                positions.append(pos)
            if valid:
                keys.add(frozenset(op.output[p].cid for p in positions))
        return keys

    def _union_disjoint_scan_keys(self, op: UnionAll) -> set[frozenset[int]]:
        """Recognizer (a) for Fig. 12a: children peel to scans of one table
        with pairwise disjoint selections; the table's keys survive when
        their columns pass through at common output positions."""
        from ..optimizer.augmentation import augmenter_view

        if not self.has(CAP_UNIQUE_FROM_PK):
            return set()
        views = []
        for child in op.inputs:
            view = augmenter_view(child)
            if view is None:
                return set()
            views.append(view)
        if len({v.scan.schema.name for v in views}) != 1:
            return set()
        if not _pairwise_disjoint([v.filters for v in views], []):
            return set()
        keys: set[frozenset[int]] = set()
        child_count = len(views)
        for constraint in views[0].scan.schema.unique_constraints:
            positions = []
            ok = True
            for column in constraint.columns:
                found = None
                for pos in range(len(op.output)):
                    if all(
                        views[i].base_column(op.child_maps[i][pos]) == column
                        for i in range(child_count)
                    ):
                        found = pos
                        break
                if found is None:
                    ok = False
                    break
                positions.append(found)
            if ok:
                keys.add(frozenset(op.output[p].cid for p in positions))
        return keys

    def _union_branchid_keys(self, op: UnionAll) -> set[frozenset[int]]:
        """Fig. 12b: a constant branch-id column with distinct values per
        child, combined with a per-child key, is unique across the union."""
        arity = len(op.output)
        child_consts = [self.constants_of(child) for child in op.inputs]
        # Branch-id candidate positions: constant in every child, values all
        # distinct across children.
        bid_positions: list[int] = []
        for pos in range(arity):
            values = []
            ok = True
            for child_index, child in enumerate(op.inputs):
                cid = op.child_maps[child_index][pos]
                if cid not in child_consts[child_index]:
                    ok = False
                    break
                values.append(child_consts[child_index][cid])
            if ok and len(set(map(repr, values))) == len(values) and all(
                v is not None for v in values
            ):
                bid_positions.append(pos)
        if not bid_positions:
            return set()
        keys: set[frozenset[int]] = set()
        # For each child, keys expressed as output-position sets.
        child_key_positions: list[set[frozenset[int]]] = []
        for child_index, child in enumerate(op.inputs):
            mapping = op.child_maps[child_index]
            pos_of = {}
            for pos, cid in enumerate(mapping):
                pos_of.setdefault(cid, pos)
            positions: set[frozenset[int]] = set()
            for key in self.unique_keys(child):
                if all(cid in pos_of for cid in key):
                    positions.add(frozenset(pos_of[cid] for cid in key))
            child_key_positions.append(positions)
        if any(not p for p in child_key_positions):
            return set()
        # Common position-sets that are keys in every child.
        common = set.intersection(*child_key_positions)
        for bid in bid_positions:
            for position_key in common:
                keys.add(
                    frozenset({op.output[bid].cid})
                    | frozenset(op.output[p].cid for p in position_key)
                )
        return keys

    # -- constants ------------------------------------------------------------

    def constants(self, op: LogicalOp) -> dict[int, object]:
        """cid -> value for columns provably constant in ``op``'s output."""
        cached = self._const_cache.get(id(op))
        if cached is not None and cached[0] is op:
            return cached[1]
        consts = self._derive_constants(op)
        self._const_cache[id(op)] = (op, consts)
        return consts

    # Alias used where "constants of some child" reads better.
    def constants_of(self, op: LogicalOp) -> dict[int, object]:
        return self.constants(op)

    def _derive_constants(self, op: LogicalOp) -> dict[int, object]:
        if isinstance(op, Filter):
            consts = dict(self.constants(op.child))
            for conjunct in conjuncts(op.predicate):
                pair = _const_equality(conjunct)
                if pair is not None:
                    consts[pair[0]] = pair[1]
            return consts
        if isinstance(op, Project):
            child_consts = self.constants(op.child)
            consts: dict[int, object] = {}
            for col, expr in op.items:
                if isinstance(expr, Const) and expr.value is not None:
                    consts[col.cid] = expr.value
                elif isinstance(expr, ColRef) and expr.cid in child_consts:
                    consts[col.cid] = child_consts[expr.cid]
            return consts
        if isinstance(op, (Sort, Limit, Distinct)):
            return dict(self.constants(op.child))
        if isinstance(op, Aggregate):
            child_consts = self.constants(op.child)
            return {cid: child_consts[cid] for cid in op.group_cids if cid in child_consts}
        if isinstance(op, Join):
            consts = dict(self.constants(op.left))
            if op.join_type is JoinType.INNER:
                # Right-side constants survive only when no NULL extension
                # can occur, i.e. inner joins.
                consts.update(self.constants(op.right))
            return consts
        if isinstance(op, UnionAll):
            consts = {}
            for pos in range(len(op.output)):
                values = []
                ok = True
                for child_index, child in enumerate(op.inputs):
                    child_consts = self.constants(child)
                    cid = op.child_maps[child_index][pos]
                    if cid not in child_consts:
                        ok = False
                        break
                    values.append(child_consts[cid])
                if ok and len({repr(v) for v in values}) == 1:
                    consts[op.output[pos].cid] = values[0]
            return consts
        return {}

    # -- provenance ------------------------------------------------------------

    def provenance(self, op: LogicalOp) -> dict[int, Provenance]:
        """cid -> base column provenance (single-source pass-throughs only)."""
        cached = self._prov_cache.get(id(op))
        if cached is not None and cached[0] is op:
            return cached[1]
        prov = self._derive_provenance(op)
        self._prov_cache[id(op)] = (op, prov)
        return prov

    def _derive_provenance(self, op: LogicalOp) -> dict[int, Provenance]:
        if isinstance(op, Scan):
            return {
                col.cid: Provenance(op, col.name) for col in op.output
            }
        if isinstance(op, (Filter, Sort, Limit, Distinct)):
            return self.provenance(op.child)
        if isinstance(op, Project):
            child_prov = self.provenance(op.child)
            result: dict[int, Provenance] = {}
            for col, expr in op.items:
                if isinstance(expr, ColRef) and expr.cid in child_prov:
                    result[col.cid] = child_prov[expr.cid]
            return result
        if isinstance(op, Join):
            result = dict(self.provenance(op.left))
            if op.join_type in (JoinType.SEMI, JoinType.ANTI):
                return result  # right columns are not in the output
            right_prov = self.provenance(op.right)
            if op.join_type is JoinType.LEFT_OUTER:
                right_prov = {
                    cid: Provenance(p.scan, p.column, outer_nulled=True)
                    for cid, p in right_prov.items()
                }
            result.update(right_prov)
            return result
        # Aggregation and Union All block scalar provenance; the union-aware
        # ASJ logic inspects children directly.
        return {}

    # -- scan-level filters (ASJ subsumption, Fig. 10c) ----------------------------

    def filters_over_scan(self, op: LogicalOp, scan: Scan) -> set[str]:
        """Normalized conjuncts applied within ``op`` that restrict rows of
        ``scan`` (referencing only that scan's columns)."""
        collected: set[str] = set()

        def visit(node: LogicalOp) -> None:
            if isinstance(node, Filter):
                prov = self.provenance(node.child)
                for conjunct in conjuncts(node.predicate):
                    signature = _normalize_conjunct(conjunct, prov, scan)
                    if signature is not None:
                        collected.add(signature)
            for child in node.children:
                visit(child)

        visit(op)
        return collected


# ---------------------------------------------------------------------------
# module helpers
# ---------------------------------------------------------------------------


def equi_join_cids(op: Join) -> tuple[list[int], list[int]]:
    """Left/right cids of plain column-to-column equi conjuncts."""
    left_cids = op.left.output_cids
    right_cids = op.right.output_cids
    left: list[int] = []
    right: list[int] = []
    for conjunct in conjuncts(op.condition):
        if isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2:
            a, b = conjunct.args
            if isinstance(a, ColRef) and isinstance(b, ColRef):
                if a.cid in left_cids and b.cid in right_cids:
                    left.append(a.cid)
                    right.append(b.cid)
                elif a.cid in right_cids and b.cid in left_cids:
                    left.append(b.cid)
                    right.append(a.cid)
    return left, right


def residual_conjuncts(op: Join) -> list[Expr]:
    """Join conjuncts that are not plain column equi comparisons."""
    left_cids = op.left.output_cids
    right_cids = op.right.output_cids
    residual = []
    for conjunct in conjuncts(op.condition):
        if isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2:
            a, b = conjunct.args
            if isinstance(a, ColRef) and isinstance(b, ColRef):
                if (a.cid in left_cids and b.cid in right_cids) or (
                    a.cid in right_cids and b.cid in left_cids
                ):
                    continue
        residual.append(conjunct)
    return residual


def _contains_aggregate(op: LogicalOp) -> bool:
    return any(isinstance(node, Aggregate) for node in op.walk())


def _minimize(keys: set[frozenset[int]]) -> set[frozenset[int]]:
    """Drop keys that are supersets of other keys."""
    minimal = set()
    for key in keys:
        if not any(other < key for other in keys):
            minimal.add(key)
    return minimal


def _const_equality(conjunct: Expr) -> tuple[int, object] | None:
    if isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2:
        a, b = conjunct.args
        if isinstance(a, ColRef) and isinstance(b, Const) and b.value is not None:
            return a.cid, b.value
        if isinstance(b, ColRef) and isinstance(a, Const) and a.value is not None:
            return b.cid, a.value
    return None


def _strip_filters(op: LogicalOp) -> tuple[LogicalOp, list[Expr]]:
    predicates: list[Expr] = []
    node = op
    while isinstance(node, Filter):
        predicates.extend(conjuncts(node.predicate))
        node = node.child
    return node, predicates


def _comparison_constraint(conjunct: Expr) -> tuple[str, str, object] | None:
    """Parse ``col <op> const`` into (column_name, op, value)."""
    if not (isinstance(conjunct, Call) and conjunct.op in ("=", "<", "<=", ">", ">=")):
        return None
    if len(conjunct.args) != 2:
        return None
    a, b = conjunct.args
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if isinstance(a, ColRef) and isinstance(b, Const) and b.value is not None:
        return (a.name, conjunct.op, b.value)
    if isinstance(b, ColRef) and isinstance(a, Const) and a.value is not None:
        return (b.name, flip[conjunct.op], a.value)
    return None


def _pairwise_disjoint(predicate_sets: list[list[Expr]], cores: list[LogicalOp]) -> bool:
    """Conservative disjointness of the children's selection predicates.

    Two children are disjoint when, on some shared column (matched by name —
    the cores are structurally identical), their constraints cannot both
    hold: different equality constants, or an equality outside the other's
    range, or non-overlapping ranges.
    """
    parsed = []
    for predicates in predicate_sets:
        constraints: dict[str, list[tuple[str, object]]] = {}
        for conjunct in predicates:
            parsed_constraint = _comparison_constraint(conjunct)
            if parsed_constraint is not None:
                name, operator, value = parsed_constraint
                constraints.setdefault(name, []).append((operator, value))
        parsed.append(constraints)
    for i in range(len(parsed)):
        for j in range(i + 1, len(parsed)):
            if not _constraints_disjoint(parsed[i], parsed[j]):
                return False
    return True


def _constraints_disjoint(
    a: dict[str, list[tuple[str, object]]], b: dict[str, list[tuple[str, object]]]
) -> bool:
    for column in set(a) & set(b):
        if _column_disjoint(a[column], b[column]):
            return True
    return False


def _column_disjoint(ca: list[tuple[str, object]], cb: list[tuple[str, object]]) -> bool:
    def bounds(constraints):
        eq = None
        low = None  # (value, inclusive)
        high = None
        for operator, value in constraints:
            if operator == "=":
                eq = value
            elif operator in (">", ">="):
                candidate = (value, operator == ">=")
                if low is None or candidate[0] > low[0]:
                    low = candidate
            elif operator in ("<", "<="):
                candidate = (value, operator == "<=")
                if high is None or candidate[0] < high[0]:
                    high = candidate
        return eq, low, high

    try:
        eq_a, low_a, high_a = bounds(ca)
        eq_b, low_b, high_b = bounds(cb)
        if eq_a is not None and eq_b is not None:
            return eq_a != eq_b
        if eq_a is not None:
            return _outside(eq_a, low_b, high_b)
        if eq_b is not None:
            return _outside(eq_b, low_a, high_a)
        # range vs range: disjoint when one's lower bound exceeds the
        # other's upper bound.
        for low, high in ((low_a, high_b), (low_b, high_a)):
            if low is not None and high is not None:
                if low[0] > high[0]:
                    return True
                if low[0] == high[0] and not (low[1] and high[1]):
                    return True
        return False
    except TypeError:
        return False  # incomparable constant types


def _outside(value: object, low, high) -> bool:
    if low is not None:
        if value < low[0] or (value == low[0] and not low[1]):
            return True
    if high is not None:
        if value > high[0] or (value == high[0] and not high[1]):
            return True
    return False


def _normalize_conjunct(
    conjunct: Expr, prov: dict[int, Provenance], scan: Scan
) -> str | None:
    """Render a conjunct in table-column space when every referenced column
    traces to ``scan`` (same table name); None otherwise."""
    from .expr import rewrite_expr

    ok = True

    def check(node: Expr) -> Expr | None:
        nonlocal ok
        if isinstance(node, ColRef):
            p = prov.get(node.cid)
            if p is None or p.scan is not scan:
                ok = False
                return None
            return ColRef(0, f"{p.scan.schema.name}.{p.column}", node.data_type, node.nullable)
        return None

    normalized = rewrite_expr(conjunct, check)
    return str(normalized) if ok else None

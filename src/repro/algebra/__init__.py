"""Logical algebra: typed, column-id based relational operator trees.

Every operator output column carries a plan-unique integer **column id**
(cid); expressions reference cids rather than names.  All optimizer rewrites
preserve the cids of retained columns, which is what makes join elimination
and self-join rewiring (the paper's UAJ/ASJ optimizations) local,
compositional transformations.
"""

from .expr import (  # noqa: F401
    AggCall,
    Call,
    Case,
    Cast,
    ColRef,
    Const,
    Expr,
    conjuncts,
    make_and,
    referenced_cids,
    rewrite_expr,
    substitute_cids,
)
from .ops import (  # noqa: F401
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    OutputCol,
    Project,
    Scan,
    Sort,
    SortKey,
    UnionAll,
)
from .binder import Binder  # noqa: F401
from .printer import explain, plan_stats, summarize_plan, PlanStats  # noqa: F401

"""AST -> logical algebra binding.

Responsibilities:

- name resolution against the catalog and FROM-clause scopes;
- **view unfolding**: views are always inlined at bind time — the VDM design
  (paper §3) assumes the optimizer simplifies the unfolded stack, so there is
  no "opaque view" execution path;
- aggregation binding (GROUP BY / HAVING / aggregates in the select list);
- the paper's SQL extensions: ``ALLOW_PRECISION_LOSS`` (§7.1), expression
  macros (§7.2), declared join cardinalities (§7.3), and ``CASE JOIN``
  (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..catalog.schema import ViewSchema
from ..datatypes import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    DataType,
    TypeKind,
    common_super_type,
    decimal_type,
    type_of_literal,
    varchar,
)
from ..errors import BindError
from ..sql import ast
from . import ops
from .expr import (
    AggCall,
    Call,
    Case,
    Cast,
    ColRef,
    Const,
    Expr,
    Param,
    make_and,
    next_cid,
    referenced_cids,
    walk,
)

AGGREGATE_FUNCS = {"COUNT", "SUM", "MIN", "MAX", "AVG"}

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
_LOGICAL_OPS = {"AND", "OR"}
_ARITHMETIC_OPS = {"+", "-", "*", "/", "%"}

# Scalar functions with (min_args, max_args).
SCALAR_FUNCS: dict[str, tuple[int, int]] = {
    "ROUND": (1, 2),
    "ABS": (1, 1),
    "FLOOR": (1, 1),
    "CEIL": (1, 1),
    "COALESCE": (2, 99),
    "IFNULL": (2, 2),
    "NULLIF": (2, 2),
    "UPPER": (1, 1),
    "LOWER": (1, 1),
    "LENGTH": (1, 1),
    "SUBSTR": (2, 3),
    "SUBSTRING": (2, 3),
    "CONCAT": (2, 99),
    "YEAR": (1, 1),
    "MONTH": (1, 1),
    "DAYOFMONTH": (1, 1),
}


@dataclass
class RelationBinding:
    """One FROM-clause relation visible in a scope."""

    alias: str
    columns: tuple[ops.OutputCol, ...]
    macros: dict[str, ast.Expr] = field(default_factory=dict)

    def find(self, name: str) -> ops.OutputCol | None:
        lowered = name.lower()
        for col in self.columns:
            if col.name == lowered:
                return col
        return None


class Scope:
    """An ordered collection of relation bindings for name resolution."""

    def __init__(self, bindings: list[RelationBinding]):
        self.bindings = bindings

    @classmethod
    def merge(cls, left: "Scope", right: "Scope") -> "Scope":
        aliases = [b.alias for b in left.bindings + right.bindings]
        duplicates = {a for a in aliases if aliases.count(a) > 1}
        if duplicates:
            raise BindError(f"duplicate table alias(es): {sorted(duplicates)}")
        return cls(left.bindings + right.bindings)

    def resolve(self, name: ast.ColumnName) -> ops.OutputCol:
        if name.qualifier is not None:
            qualifier = name.qualifier.lower()
            for binding in self.bindings:
                if binding.alias == qualifier:
                    col = binding.find(name.name)
                    if col is None:
                        raise BindError(f"no column {name.name!r} in {name.qualifier!r}")
                    return col
            raise BindError(f"unknown table alias {name.qualifier!r}")
        matches = [col for b in self.bindings if (col := b.find(name.name)) is not None]
        if not matches:
            raise BindError(f"unknown column {name.name!r}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {name.name!r}")
        return matches[0]

    def all_columns(self, qualifier: str | None = None) -> list[ops.OutputCol]:
        if qualifier is None:
            return [col for b in self.bindings for col in b.columns]
        lowered = qualifier.lower()
        for binding in self.bindings:
            if binding.alias == lowered:
                return list(binding.columns)
        raise BindError(f"unknown table alias {qualifier!r}")

    def find_macro(self, name: str) -> ast.Expr | None:
        lowered = name.lower()
        found: list[ast.Expr] = []
        for binding in self.bindings:
            if lowered in binding.macros:
                found.append(binding.macros[lowered])
        if len(found) > 1:
            raise BindError(f"ambiguous expression macro {name!r}")
        return found[0] if found else None


class Binder:
    """Binds parsed queries against a catalog, producing logical plans."""

    def __init__(self, catalog: Catalog, parameterize: bool = False):
        self._catalog = catalog
        self._view_stack: list[str] = []
        # When set, slot-tagged statement literals bind as opaque Param
        # nodes (generic-plan mode for the plan cache).  View bodies bind
        # under a non-empty _view_stack and always produce Consts — their
        # literals belong to the view definition, not the statement.
        self._parameterize = parameterize

    # -- queries -----------------------------------------------------------

    def bind_query(self, query: ast.Query) -> ops.LogicalOp:
        if isinstance(query, ast.Select):
            return self._bind_select(query)
        if isinstance(query, ast.SetOp):
            return self._bind_setop(query)
        raise BindError(f"unsupported query node {type(query).__name__}")

    def _bind_setop(self, setop: ast.SetOp) -> ops.LogicalOp:
        parts = self._flatten_union(setop.left) + self._flatten_union(setop.right)
        children = [self.bind_query(p) for p in parts]
        arity = len(children[0].output)
        for child in children[1:]:
            if len(child.output) != arity:
                raise BindError("UNION ALL children must have the same number of columns")
        op: ops.LogicalOp = ops.UnionAll.create(children)
        if setop.order_by:
            op = self._bind_order_on_output(op, setop.order_by)
        if setop.limit is not None or setop.offset is not None:
            op = ops.Limit(op, setop.limit, setop.offset or 0)
        return op

    def _flatten_union(self, query: ast.Query) -> list[ast.Query]:
        """Flatten nested UNION ALLs into an n-ary list (the paper's five-way
        Union All in Fig. 3 is one n-ary node)."""
        if isinstance(query, ast.SetOp) and not query.order_by and query.limit is None:
            return self._flatten_union(query.left) + self._flatten_union(query.right)
        if isinstance(query, ast.SetOp):
            # An inner SetOp that carries ORDER BY / LIMIT binds as a unit.
            return [query]
        return [query]

    def _bind_order_on_output(
        self, op: ops.LogicalOp, order_by: tuple[ast.OrderItem, ...]
    ) -> ops.LogicalOp:
        keys = []
        for item in order_by:
            if not isinstance(item.expr, ast.ColumnName) or item.expr.qualifier:
                raise BindError("ORDER BY over UNION ALL must use output column names")
            name = item.expr.name.lower()
            match = [c for c in op.output if c.name == name]
            if not match:
                raise BindError(f"unknown ORDER BY column {name!r}")
            keys.append(ops.SortKey(match[0].cid, item.ascending))
        return ops.Sort(op, tuple(keys))

    # -- SELECT ---------------------------------------------------------------

    def _bind_select(self, select: ast.Select) -> ops.LogicalOp:
        if select.from_clause is None:
            op: ops.LogicalOp = ops.OneRow()
            scope = Scope([])
        else:
            op, scope = self._bind_table_expr(select.from_clause)

        if select.where is not None:
            where_ast = self._expand_macros(select.where, scope)
            plain, subquery_conjuncts = self._split_where_subqueries(where_ast)
            for conjunct in subquery_conjuncts:
                op = self._apply_subquery_conjunct(op, scope, conjunct)
            if plain is not None:
                predicate = self._bind_scalar(plain, scope, allow_agg=False)
                self._require_boolean(predicate, "WHERE")
                op = ops.Filter(op, predicate)

        items = self._expand_select_items(select.items, scope)
        item_asts = [self._expand_macros(item.expr, scope) for item in items]
        having_ast = (
            self._expand_macros(select.having, scope) if select.having is not None else None
        )
        group_asts = [self._expand_macros(g, scope) for g in select.group_by]

        has_aggregate = (
            bool(group_asts)
            or any(self._contains_aggregate(e) for e in item_asts)
            or (having_ast is not None and self._contains_aggregate(having_ast))
        )

        if has_aggregate:
            op, bound_items = self._bind_aggregate_select(
                op, scope, item_asts, group_asts, having_ast
            )
        else:
            if having_ast is not None:
                raise BindError("HAVING requires aggregation")
            bound_items = [self._bind_scalar(e, scope, allow_agg=False) for e in item_asts]

        project_items = []
        for item, bound in zip(items, bound_items):
            name = self._output_name(item, len(project_items))
            col = ops.OutputCol(
                self._passthrough_cid(bound), name, bound.data_type, bound.nullable
            )
            project_items.append((col, bound))
        project = ops.Project(op, tuple(project_items))
        result: ops.LogicalOp = project

        if select.distinct:
            result = ops.Distinct(result)

        if select.order_by:
            result = self._bind_order_by(result, project, scope, select.order_by, has_aggregate)

        if select.limit is not None or select.offset is not None:
            result = ops.Limit(result, select.limit, select.offset or 0)
        return result

    @staticmethod
    def _passthrough_cid(bound: Expr) -> int:
        """Reuse the cid of simple column pass-throughs; fresh otherwise.

        Sharing the cid along pass-through chains is what lets the pruning
        and rewiring rules track a column through deep view stacks.
        """
        if isinstance(bound, ColRef):
            return bound.cid
        return next_cid()

    def _expand_select_items(
        self, items: tuple[ast.SelectItem, ...], scope: Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for col in scope.all_columns(item.expr.qualifier):
                    expanded.append(ast.SelectItem(ast.ColumnName(col.name), alias=col.name))
                    # Ambiguity is acceptable for * expansion; remember cid
                    # directly by rewriting to a resolved marker below.
                    expanded[-1] = _ResolvedItem(col)  # type: ignore[assignment]
            else:
                expanded.append(item)
        return expanded

    @staticmethod
    def _output_name(item: "ast.SelectItem | _ResolvedItem", index: int) -> str:
        if isinstance(item, _ResolvedItem):
            return item.col.name
        if item.alias:
            return item.alias.lower()
        if isinstance(item.expr, ast.ColumnName):
            return item.expr.name.lower()
        return f"c{index}"

    # -- aggregation --------------------------------------------------------

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FunctionCall):
            if expr.name in AGGREGATE_FUNCS:
                return True
            return any(self._contains_aggregate(a) for a in expr.args)
        for child in _ast_children(expr):
            if self._contains_aggregate(child):
                return True
        return False

    def _bind_aggregate_select(
        self,
        child: ops.LogicalOp,
        scope: Scope,
        item_asts: list[ast.Expr],
        group_asts: list[ast.Expr],
        having_ast: ast.Expr | None,
    ) -> tuple[ops.LogicalOp, list[Expr]]:
        bound_keys = [self._bind_scalar(g, scope, allow_agg=False) for g in group_asts]

        # Pre-project computed grouping keys so Aggregate's keys are plain
        # child columns (simplifies execution and uniqueness derivation).
        if any(not isinstance(k, ColRef) for k in bound_keys):
            passthrough = [(col, col.as_ref()) for col in child.output]
            key_cids: list[int] = []
            extra: list[tuple[ops.OutputCol, Expr]] = []
            for index, key in enumerate(bound_keys):
                if isinstance(key, ColRef):
                    key_cids.append(key.cid)
                else:
                    col = ops.OutputCol(next_cid(), f"gk{index}", key.data_type, key.nullable)
                    extra.append((col, key))
                    key_cids.append(col.cid)
            child = ops.Project(child, tuple(passthrough + extra))
        else:
            key_cids = [k.cid for k in bound_keys]  # type: ignore[union-attr]

        # Collect aggregate calls from the select list and HAVING.
        collector = _AggCollector(self, scope)
        rewritten_items = [collector.rewrite(e) for e in item_asts]
        rewritten_having = collector.rewrite(having_ast) if having_ast is not None else None

        agg_items: list[tuple[ops.OutputCol, AggCall]] = []
        for call, col in collector.results:
            agg_items.append((col, call))
        agg_op = ops.Aggregate(child, tuple(key_cids), tuple(agg_items))

        # Bind the rewritten item ASTs; _AggPlaceholder nodes become ColRefs.
        key_by_struct = {self._struct_key(b): ColRef(c, "k", b.data_type, b.nullable)
                         for b, c in zip(bound_keys, key_cids)}
        bound_items = [
            self._bind_post_agg(e, scope, key_by_struct, key_cids, collector)
            for e in rewritten_items
        ]
        result: ops.LogicalOp = agg_op
        if rewritten_having is not None:
            having_bound = self._bind_post_agg(
                rewritten_having, scope, key_by_struct, key_cids, collector
            )
            self._require_boolean(having_bound, "HAVING")
            result = ops.Filter(result, having_bound)
        return result, bound_items

    def _struct_key(self, bound: Expr) -> str:
        return str(bound)

    def _bind_post_agg(
        self,
        expr: ast.Expr,
        scope: Scope,
        key_by_struct: dict[str, ColRef],
        key_cids: list[int],
        collector: "_AggCollector",
    ) -> Expr:
        """Bind a select item in the post-aggregation scope.

        Aggregate placeholders resolve to Aggregate output columns; any other
        subexpression must either match a grouping key or reference only
        grouping-key columns.
        """
        if isinstance(expr, _AggPlaceholder):
            return expr.col.as_ref()
        bound_attempt = self._bind_scalar_post(expr, scope, collector)
        # Replace subexpressions equal to grouping keys with their key cols.
        replaced = self._replace_keys(bound_attempt, key_by_struct)
        invalid = [
            cid
            for cid in referenced_cids(replaced)
            if cid not in key_cids and cid not in collector.agg_cids
        ]
        if invalid:
            raise BindError(
                "column(s) referenced outside aggregates must appear in GROUP BY"
            )
        return replaced

    def _replace_keys(self, bound: Expr, key_by_struct: dict[str, ColRef]) -> Expr:
        from .expr import rewrite_expr

        def replace(node: Expr) -> Expr | None:
            ref = key_by_struct.get(str(node))
            if ref is not None and not isinstance(node, ColRef):
                return ColRef(ref.cid, ref.name, node.data_type, node.nullable)
            if isinstance(node, ColRef):
                mapped = key_by_struct.get(str(node))
                if mapped is not None:
                    return node  # ColRef keys already carry the right cid
            return None

        return rewrite_expr(bound, replace)

    def _bind_scalar_post(self, expr: ast.Expr, scope: Scope, collector: "_AggCollector") -> Expr:
        """bind_scalar that understands _AggPlaceholder leaves."""
        if isinstance(expr, _AggPlaceholder):
            return expr.col.as_ref()
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_scalar_post(expr.left, scope, collector)
            right = self._bind_scalar_post(expr.right, scope, collector)
            return self._build_binary(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._bind_scalar_post(expr.operand, scope, collector)
            return self._build_unary(expr.op, operand)
        if isinstance(expr, ast.FunctionCall):
            args = tuple(self._bind_scalar_post(a, scope, collector) for a in expr.args)
            return self._build_function(expr.name, args)
        if isinstance(expr, ast.CaseWhen):
            branches = tuple(
                (self._bind_scalar_post(c, scope, collector),
                 self._bind_scalar_post(v, scope, collector))
                for c, v in expr.branches
            )
            else_value = (
                self._bind_scalar_post(expr.else_value, scope, collector)
                if expr.else_value is not None else None
            )
            return self._build_case(branches, else_value)
        if isinstance(expr, ast.CastExpr):
            return Cast(self._bind_scalar_post(expr.operand, scope, collector), expr.target)
        if isinstance(expr, ast.IsNull):
            operand = self._bind_scalar_post(expr.operand, scope, collector)
            return Call("ISNOTNULL" if expr.negated else "ISNULL", (operand,), BOOLEAN, False)
        return self._bind_scalar(expr, scope, allow_agg=False)

    # -- ORDER BY ----------------------------------------------------------

    def _bind_order_by(
        self,
        result: ops.LogicalOp,
        project: ops.Project,
        scope: Scope,
        order_by: tuple[ast.OrderItem, ...],
        has_aggregate: bool,
    ) -> ops.LogicalOp:
        keys: list[ops.SortKey] = []
        hidden: list[tuple[ops.OutputCol, Expr]] = []
        for item in order_by:
            cid = self._resolve_order_key(item.expr, project)
            if cid is None:
                if has_aggregate:
                    raise BindError(
                        "ORDER BY over aggregation must reference output columns"
                    )
                expr_ast = self._expand_macros(item.expr, scope)
                bound = self._bind_scalar(expr_ast, scope, allow_agg=False)
                if isinstance(bound, ColRef):
                    cid = bound.cid
                    if cid in {c.cid for c, _ in project.items}:
                        keys.append(ops.SortKey(cid, item.ascending))
                        continue
                    if cid not in project.child.output_cids:
                        raise BindError("ORDER BY column is not available")
                    col = project.child.find_col(cid)
                    hidden.append((col, bound))
                else:
                    col = ops.OutputCol(next_cid(), "sortkey", bound.data_type, bound.nullable)
                    hidden.append((col, bound))
                    cid = col.cid
            keys.append(ops.SortKey(cid, item.ascending))
        if hidden:
            widened = ops.Project(project.child, project.items + tuple(hidden))
            sort = ops.Sort(widened, tuple(keys))
            trim = ops.identity_project(sort, [c.cid for c, _ in project.items])
            return trim
        return ops.Sort(result, tuple(keys))

    @staticmethod
    def _resolve_order_key(expr: ast.Expr, project: ops.Project) -> int | None:
        if isinstance(expr, ast.ColumnName) and expr.qualifier is None:
            name = expr.name.lower()
            for col, _ in project.items:
                if col.name == name:
                    return col.cid
        return None

    # -- FROM clause ---------------------------------------------------------

    def _bind_table_expr(self, table_expr: ast.TableExpr) -> tuple[ops.LogicalOp, Scope]:
        if isinstance(table_expr, ast.TableRef):
            return self._bind_table_ref(table_expr)
        if isinstance(table_expr, ast.DerivedTable):
            op = self.bind_query(table_expr.query)
            binding = RelationBinding(table_expr.alias.lower(), op.output)
            return op, Scope([binding])
        if isinstance(table_expr, ast.JoinClause):
            return self._bind_join(table_expr)
        raise BindError(f"unsupported FROM item {type(table_expr).__name__}")

    def _bind_table_ref(self, ref: ast.TableRef) -> tuple[ops.LogicalOp, Scope]:
        name = ref.name.lower()
        alias = (ref.alias or ref.name).lower()
        if self._catalog.has_table(name):
            scan = ops.Scan.create(self._catalog.table_schema(name))
            return scan, Scope([RelationBinding(alias, scan.output)])
        if self._catalog.has_view(name):
            return self._bind_view(self._catalog.view(name), alias)
        raise BindError(f"unknown table or view {ref.name!r}")

    def _bind_view(self, view: ViewSchema, alias: str) -> tuple[ops.LogicalOp, Scope]:
        if view.name in self._view_stack:
            raise BindError(f"recursive view reference: {view.name!r}")
        self._view_stack.append(view.name)
        try:
            op = self.bind_query(view.query)  # inlined (unfolded) body
        finally:
            self._view_stack.pop()
        if view.column_names:
            if len(view.column_names) != len(op.output):
                raise BindError(
                    f"view {view.name!r} declares {len(view.column_names)} columns, "
                    f"query produces {len(op.output)}"
                )
            items = tuple(
                (col.renamed(new_name), col.as_ref())
                for col, new_name in zip(op.output, view.column_names)
            )
            op = ops.Project(op, items)
        binding = RelationBinding(alias, op.output, dict(view.macros))
        return op, Scope([binding])

    def _bind_join(self, join: ast.JoinClause) -> tuple[ops.LogicalOp, Scope]:
        left_op, left_scope = self._bind_table_expr(join.left)
        right_op, right_scope = self._bind_table_expr(join.right)
        scope = Scope.merge(left_scope, right_scope)
        if join.kind is ast.JoinKind.CROSS:
            return ops.Join(ops.JoinType.INNER, left_op, right_op, None), scope
        condition = None
        if join.condition is not None:
            condition_ast = self._expand_macros(join.condition, scope)
            condition = self._bind_scalar(condition_ast, scope, allow_agg=False)
            self._require_boolean(condition, "JOIN ... ON")
        if join.kind is ast.JoinKind.INNER:
            join_type = ops.JoinType.INNER
            case_join = False
        else:  # LEFT_OUTER or CASE_JOIN
            join_type = ops.JoinType.LEFT_OUTER
            case_join = join.kind is ast.JoinKind.CASE_JOIN
        bound = ops.Join(join_type, left_op, right_op, condition, join.cardinality, case_join)
        return bound, scope

    # -- scalar expression binding ----------------------------------------------

    def _bind_scalar(self, expr: ast.Expr, scope: Scope, allow_agg: bool) -> Expr:
        if isinstance(expr, _PreBoundColumn):
            return expr.col.as_ref()
        if isinstance(expr, ast.ColumnName):
            return scope.resolve(expr).as_ref()
        if isinstance(expr, ast.Literal):
            if (self._parameterize and expr.param_slot is not None
                    and not self._view_stack):
                return Param(expr.param_slot, type_of_literal(expr.value))
            return Const(expr.value, type_of_literal(expr.value))
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_scalar(expr.left, scope, allow_agg)
            right = self._bind_scalar(expr.right, scope, allow_agg)
            return self._build_binary(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            return self._build_unary(expr.op, self._bind_scalar(expr.operand, scope, allow_agg))
        if isinstance(expr, ast.FunctionCall):
            if expr.name in AGGREGATE_FUNCS and not allow_agg:
                raise BindError(f"aggregate {expr.name} is not allowed here")
            if expr.name in AGGREGATE_FUNCS:
                raise BindError("internal: aggregates must be collected before binding")
            if expr.name == "ALLOW_PRECISION_LOSS":
                raise BindError("ALLOW_PRECISION_LOSS must wrap an aggregate expression")
            if expr.name == "EXPRESSION_MACRO":
                raise BindError("internal: expression macros must be expanded before binding")
            args = tuple(self._bind_scalar(a, scope, allow_agg) for a in expr.args)
            return self._build_function(expr.name, args)
        if isinstance(expr, ast.CaseWhen):
            branches = tuple(
                (self._bind_scalar(c, scope, allow_agg), self._bind_scalar(v, scope, allow_agg))
                for c, v in expr.branches
            )
            else_value = (
                self._bind_scalar(expr.else_value, scope, allow_agg)
                if expr.else_value is not None else None
            )
            return self._build_case(branches, else_value)
        if isinstance(expr, ast.CastExpr):
            return Cast(self._bind_scalar(expr.operand, scope, allow_agg), expr.target)
        if isinstance(expr, ast.InList):
            operand = self._bind_scalar(expr.operand, scope, allow_agg)
            items = tuple(self._bind_scalar(i, scope, allow_agg) for i in expr.items)
            in_call = Call("IN", (operand,) + items, BOOLEAN, True)
            return Call("NOT", (in_call,), BOOLEAN, True) if expr.negated else in_call
        if isinstance(expr, ast.BetweenExpr):
            operand = self._bind_scalar(expr.operand, scope, allow_agg)
            low = self._bind_scalar(expr.low, scope, allow_agg)
            high = self._bind_scalar(expr.high, scope, allow_agg)
            both = make_and(
                [
                    self._build_binary(">=", operand, low),
                    self._build_binary("<=", operand, high),
                ]
            )
            assert both is not None
            return Call("NOT", (both,), BOOLEAN, True) if expr.negated else both
        if isinstance(expr, ast.IsNull):
            operand = self._bind_scalar(expr.operand, scope, allow_agg)
            return Call(
                "ISNOTNULL" if expr.negated else "ISNULL", (operand,), BOOLEAN, False
            )
        if isinstance(expr, ast.ScalarQuery):
            subplan = self.bind_query(expr.query)
            if len(subplan.output) != 1:
                raise BindError("a scalar subquery must produce exactly one column")
            from .expr import ScalarSubquery

            col = subplan.output[0]
            return ScalarSubquery(subplan, col.data_type, True)  # type: ignore[arg-type]
        if isinstance(expr, (ast.ExistsExpr, ast.InSubquery)):
            raise BindError(
                "EXISTS / IN (subquery) is only supported as a top-level "
                "WHERE conjunct"
            )
        if isinstance(expr, ast.Star):
            raise BindError("* is only valid in the select list or COUNT(*)")
        raise BindError(f"unsupported expression {type(expr).__name__}")

    # -- expression construction helpers ------------------------------------

    def _build_binary(self, op: str, left: Expr, right: Expr) -> Expr:
        nullable = left.nullable or right.nullable
        if op in _LOGICAL_OPS:
            self._require_boolean(left, op)
            self._require_boolean(right, op)
            return Call(op, (left, right), BOOLEAN, nullable)
        if op in _COMPARISON_OPS or op == "LIKE":
            return Call(op, (left, right), BOOLEAN, nullable)
        if op == "||":
            return Call("||", (left, right), varchar(None), nullable)
        if op in _ARITHMETIC_OPS:
            # An untyped NULL literal adopts the other operand's type.
            if _is_null_const(left) and _is_null_const(right):
                return Call(op, (left, right), varchar(None), True)
            if _is_null_const(left):
                return Call(op, (left, right), right.data_type, True)
            if _is_null_const(right):
                return Call(op, (left, right), left.data_type, True)
            result_type = self._arithmetic_type(op, left.data_type, right.data_type)
            return Call(op, (left, right), result_type, nullable)
        raise BindError(f"unsupported operator {op!r}")

    @staticmethod
    def _arithmetic_type(op: str, left: DataType, right: DataType) -> DataType:
        if not (left.is_numeric and right.is_numeric):
            # DATE arithmetic and friends are out of scope; be strict.
            if left.kind is TypeKind.DATE or right.kind is TypeKind.DATE:
                raise BindError("date arithmetic is not supported; use YEAR()/MONTH()")
            raise BindError(f"non-numeric operands for {op!r}: {left}, {right}")
        if op == "/":
            if left.kind is TypeKind.DOUBLE or right.kind is TypeKind.DOUBLE:
                return DOUBLE
            if left.kind is TypeKind.DECIMAL or right.kind is TypeKind.DECIMAL:
                return decimal_type(38, 10)
            return DOUBLE
        unified = common_super_type(left, right)
        if op == "*" and unified.kind is TypeKind.DECIMAL:
            scale = (left.scale or 0) + (right.scale or 0)
            return decimal_type(38, scale)
        return unified

    def _build_unary(self, op: str, operand: Expr) -> Expr:
        if op == "NOT":
            self._require_boolean(operand, "NOT")
            return Call("NOT", (operand,), BOOLEAN, operand.nullable)
        if op == "-":
            if not operand.data_type.is_numeric:
                raise BindError("unary minus needs a numeric operand")
            return Call("NEG", (operand,), operand.data_type, operand.nullable)
        raise BindError(f"unsupported unary operator {op!r}")

    def _build_case(
        self, branches: tuple[tuple[Expr, Expr], ...], else_value: Expr | None
    ) -> Expr:
        for cond, _ in branches:
            self._require_boolean(cond, "CASE WHEN")
        values = [v for _, v in branches]
        if else_value is not None:
            values.append(else_value)
        typed = [v.data_type for v in values if not _is_null_const(v)]
        result_type = typed[0] if typed else varchar(None)
        for data_type in typed[1:]:
            result_type = common_super_type(result_type, data_type)
        nullable = else_value is None or else_value.nullable or any(
            v.nullable for _, v in branches
        )
        return Case(branches, else_value, result_type, nullable)

    def _build_function(self, name: str, args: tuple[Expr, ...]) -> Expr:
        spec = SCALAR_FUNCS.get(name)
        if spec is None:
            raise BindError(f"unknown function {name!r}")
        low, high = spec
        if not (low <= len(args) <= high):
            raise BindError(f"{name} expects {low}..{high} arguments, got {len(args)}")
        nullable = any(a.nullable for a in args)
        if name in ("ROUND", "ABS", "FLOOR", "CEIL"):
            if not args[0].data_type.is_numeric:
                raise BindError(f"{name} needs a numeric argument")
            result = args[0].data_type
            if name in ("FLOOR", "CEIL"):
                result = BIGINT
            return Call(name, args, result, nullable)
        if name in ("COALESCE", "IFNULL"):
            typed = [a.data_type for a in args if not _is_null_const(a)]
            result = typed[0] if typed else varchar(None)
            for data_type in typed[1:]:
                result = common_super_type(result, data_type)
            all_nullable = all(a.nullable for a in args)
            return Call("COALESCE", args, result, all_nullable)
        if name == "NULLIF":
            return Call(name, args, args[0].data_type, True)
        if name in ("UPPER", "LOWER", "SUBSTR", "SUBSTRING"):
            return Call("SUBSTR" if name == "SUBSTRING" else name, args, varchar(None), nullable)
        if name == "LENGTH":
            return Call(name, args, BIGINT, nullable)
        if name == "CONCAT":
            return Call(name, args, varchar(None), nullable)
        if name in ("YEAR", "MONTH", "DAYOFMONTH"):
            return Call(name, args, BIGINT, nullable)
        raise BindError(f"unknown function {name!r}")

    @staticmethod
    def _require_boolean(expr: Expr, context: str) -> None:
        if _is_null_const(expr):
            return  # untyped NULL is a valid (UNKNOWN) boolean
        if expr.data_type.kind is not TypeKind.BOOLEAN:
            raise BindError(f"{context} requires a boolean expression, got {expr.data_type}")

    # -- EXISTS / IN subqueries -----------------------------------------------------

    def _split_where_subqueries(
        self, where: ast.Expr
    ) -> tuple[ast.Expr | None, list["_SubqueryConjunct"]]:
        """Split a WHERE tree into plain conjuncts and subquery conjuncts.

        Uncorrelated ``[NOT] EXISTS`` and ``[NOT] IN (subquery)`` are
        supported as *top-level conjuncts* (the common analytical shape);
        anywhere else (under OR/NOT/expressions) is rejected.
        """
        plain: list[ast.Expr] = []
        subqueries: list[_SubqueryConjunct] = []

        def flatten(node: ast.Expr) -> None:
            if isinstance(node, ast.BinaryOp) and node.op == "AND":
                flatten(node.left)
                flatten(node.right)
                return
            if isinstance(node, ast.ExistsExpr):
                subqueries.append(_SubqueryConjunct(
                    "anti" if node.negated else "semi", None, node.query, False))
                return
            if isinstance(node, ast.InSubquery):
                kind = "anti" if node.negated else "semi"
                subqueries.append(_SubqueryConjunct(
                    kind, node.operand, node.query, node.negated))
                return
            if isinstance(node, ast.UnaryOp) and node.op == "NOT":
                inner = node.operand
                if isinstance(inner, ast.ExistsExpr):
                    subqueries.append(_SubqueryConjunct(
                        "semi" if inner.negated else "anti", None, inner.query, False))
                    return
                if isinstance(inner, ast.InSubquery):
                    kind = "semi" if inner.negated else "anti"
                    subqueries.append(_SubqueryConjunct(
                        kind, inner.operand, inner.query, not inner.negated))
                    return
            if _contains_subquery(node):
                raise BindError(
                    "EXISTS / IN (subquery) is only supported as a top-level "
                    "WHERE conjunct"
                )
            plain.append(node)

        flatten(where)
        combined: ast.Expr | None = None
        for part in plain:
            combined = part if combined is None else ast.BinaryOp("AND", combined, part)
        return combined, subqueries

    def _apply_subquery_conjunct(
        self, op: ops.LogicalOp, scope: Scope, conjunct: "_SubqueryConjunct"
    ) -> ops.LogicalOp:
        subplan = self.bind_query(conjunct.query)
        join_type = ops.JoinType.SEMI if conjunct.kind == "semi" else ops.JoinType.ANTI
        if conjunct.operand is None:  # EXISTS
            return ops.Join(join_type, op, subplan, None)
        if len(subplan.output) != 1:
            raise BindError("IN (subquery) requires a single-column subquery")
        operand = self._bind_scalar(conjunct.operand, scope, allow_agg=False)
        right_ref = subplan.output[0].as_ref()
        condition = Call("=", (operand, right_ref), BOOLEAN, True)
        null_aware = conjunct.kind == "anti"  # NOT IN: NULL = UNKNOWN filters
        return ops.Join(join_type, op, subplan, condition, None, False, null_aware)

    # -- expression macros (§7.2) -----------------------------------------------

    def _expand_macros(self, expr: ast.Expr, scope: Scope, depth: int = 0) -> ast.Expr:
        if depth > 16:
            raise BindError("expression macro expansion too deep (cycle?)")
        if isinstance(expr, ast.FunctionCall) and expr.name == "EXPRESSION_MACRO":
            if len(expr.args) != 1 or not isinstance(expr.args[0], ast.ColumnName):
                raise BindError("EXPRESSION_MACRO expects a single macro name")
            macro_name = expr.args[0].name
            body = scope.find_macro(macro_name)
            if body is None:
                raise BindError(f"unknown expression macro {macro_name!r}")
            return self._expand_macros(body, scope, depth + 1)
        return _rewrite_ast(expr, lambda e: self._expand_macros(e, scope, depth)
                            if isinstance(e, ast.FunctionCall) and e.name == "EXPRESSION_MACRO"
                            else None)


class _PreBoundColumn(ast.Expr):
    """AST marker for a column already resolved to an OutputCol (from ``*``
    expansion, which must not re-resolve by name — names can be ambiguous)."""

    __slots__ = ("col",)

    def __init__(self, col: ops.OutputCol):
        self.col = col


@dataclass(frozen=True)
class _ResolvedItem:
    """A select item already resolved to a scope column (from ``*``)."""

    col: ops.OutputCol

    @property
    def expr(self) -> ast.Expr:  # duck-typed like ast.SelectItem
        return _PreBoundColumn(self.col)

    @property
    def alias(self) -> str:
        return self.col.name


class _AggPlaceholder(ast.Expr):
    """AST marker standing in for a collected aggregate call."""

    __slots__ = ("col",)

    def __init__(self, col: ops.OutputCol):
        self.col = col


class _AggCollector:
    """Extracts aggregate calls from ASTs, binding their arguments.

    Handles the ``ALLOW_PRECISION_LOSS`` wrapper (§7.1): aggregates inside it
    get the flag on their bound :class:`AggCall`.
    """

    def __init__(self, binder: Binder, scope: Scope):
        self._binder = binder
        self._scope = scope
        self.results: list[tuple[AggCall, ops.OutputCol]] = []
        self._dedupe: dict[str, ops.OutputCol] = {}

    @property
    def agg_cids(self) -> set[int]:
        return {col.cid for _, col in self.results}

    def rewrite(self, expr: ast.Expr, apl: bool = False) -> ast.Expr:
        if isinstance(expr, ast.FunctionCall):
            if expr.name == "ALLOW_PRECISION_LOSS":
                if len(expr.args) != 1:
                    raise BindError("ALLOW_PRECISION_LOSS expects one argument")
                return self.rewrite(expr.args[0], apl=True)
            if expr.name in AGGREGATE_FUNCS:
                return self._collect(expr, apl)
        return _rewrite_ast(expr, lambda e: self.rewrite(e, apl)
                            if isinstance(e, ast.FunctionCall)
                            and (e.name in AGGREGATE_FUNCS or e.name == "ALLOW_PRECISION_LOSS")
                            else None)

    def _collect(self, call: ast.FunctionCall, apl: bool) -> _AggPlaceholder:
        func = call.name
        if func == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            agg = AggCall("COUNT_STAR", None, BIGINT, distinct=False,
                          allow_precision_loss=apl)
        else:
            if len(call.args) != 1:
                raise BindError(f"{func} expects exactly one argument")
            if self._binder._contains_aggregate(call.args[0]):
                raise BindError("nested aggregates are not allowed")
            arg = self._binder._bind_scalar(call.args[0], self._scope, allow_agg=False)
            agg = AggCall(func, arg, self._agg_type(func, arg), call.distinct, apl)
        key = str(agg)
        existing = self._dedupe.get(key)
        if existing is not None:
            return _AggPlaceholder(existing)
        col = ops.OutputCol(next_cid(), func.lower(), agg.data_type,
                            nullable=(func != "COUNT" and func != "COUNT_STAR"))
        self._dedupe[key] = col
        self.results.append((agg, col))
        return _AggPlaceholder(col)

    @staticmethod
    def _agg_type(func: str, arg: Expr) -> DataType:
        if func == "COUNT":
            return BIGINT
        if func in ("SUM", "MIN", "MAX"):
            if func == "SUM" and arg.data_type.kind is TypeKind.DECIMAL:
                return decimal_type(38, arg.data_type.scale or 0)
            if func == "SUM" and arg.data_type.kind is TypeKind.INTEGER:
                return BIGINT
            return arg.data_type
        if func == "AVG":
            if arg.data_type.kind is TypeKind.DECIMAL:
                return decimal_type(38, 10)
            return DOUBLE
        raise BindError(f"unknown aggregate {func!r}")


def _ast_children(expr: ast.Expr) -> tuple[ast.Expr, ...]:
    if isinstance(expr, ast.BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, ast.UnaryOp):
        return (expr.operand,)
    if isinstance(expr, ast.FunctionCall):
        return expr.args
    if isinstance(expr, ast.CaseWhen):
        parts: list[ast.Expr] = []
        for cond, value in expr.branches:
            parts.extend((cond, value))
        if expr.else_value is not None:
            parts.append(expr.else_value)
        return tuple(parts)
    if isinstance(expr, ast.CastExpr):
        return (expr.operand,)
    if isinstance(expr, ast.InList):
        return (expr.operand,) + expr.items
    if isinstance(expr, ast.BetweenExpr):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, ast.IsNull):
        return (expr.operand,)
    return ()


def _rebuild_ast(expr: ast.Expr, children: list[ast.Expr]) -> ast.Expr:
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, children[0], children[1])
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, children[0])
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name, tuple(children), expr.distinct)
    if isinstance(expr, ast.CaseWhen):
        count = len(expr.branches)
        branches = tuple((children[2 * i], children[2 * i + 1]) for i in range(count))
        else_value = children[2 * count] if expr.else_value is not None else None
        return ast.CaseWhen(branches, else_value)
    if isinstance(expr, ast.CastExpr):
        return ast.CastExpr(children[0], expr.target)
    if isinstance(expr, ast.InList):
        return ast.InList(children[0], tuple(children[1:]), expr.negated)
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(children[0], children[1], children[2], expr.negated)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(children[0], expr.negated)
    return expr


def _rewrite_ast(expr: ast.Expr, fn) -> ast.Expr:
    """Top-down AST rewrite; ``fn`` returns a replacement or None."""
    replacement = fn(expr)
    if replacement is not None:
        return replacement
    children = _ast_children(expr)
    if not children:
        return expr
    new_children = [_rewrite_ast(c, fn) for c in children]
    if all(n is o for n, o in zip(new_children, children)):
        return expr
    return _rebuild_ast(expr, new_children)


def _is_null_const(expr: Expr) -> bool:
    """True for an untyped NULL literal, which adopts any required type."""
    return isinstance(expr, Const) and expr.value is None


@dataclass(frozen=True)
class _SubqueryConjunct:
    """One EXISTS / IN (subquery) conjunct extracted from WHERE."""

    kind: str                    # "semi" | "anti"
    operand: "ast.Expr | None"   # IN's probe expression; None for EXISTS
    query: "ast.Query"
    null_aware: bool


def _contains_subquery(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.ExistsExpr, ast.InSubquery)):
        return True
    for child in _ast_children(expr):
        if _contains_subquery(child):
            return True
    if isinstance(expr, ast.InSubquery):
        return True
    return False

"""Algebra-level expression IR.

Unlike the parse-tree (:mod:`repro.sql.ast`), these expressions are *bound*:
column references carry a plan-unique column id (cid) plus type and
nullability, and every node knows its result type.  Structural equality
(frozen dataclasses) is used heavily by the optimizer — e.g. to match
predicate conjuncts for the ASJ subsumption check (paper Fig. 10c).

Operator calls are normalized into :class:`Call` nodes whose ``op`` is either
a symbolic operator (``=``, ``AND``, ``+`` ...) or an upper-case function
name (``ROUND``, ``COALESCE`` ...).  Aggregates are :class:`AggCall` and only
appear inside :class:`repro.algebra.ops.Aggregate` nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..datatypes import BOOLEAN, DataType

# Plan-unique column id source.  Ids only need to be unique within a process;
# a global counter keeps the binder and rewrite rules free of allocator
# plumbing.
_cid_counter = itertools.count(1)


def next_cid() -> int:
    """Allocate a fresh column id."""
    return next(_cid_counter)


class Expr:
    """Base class for bound scalar expressions."""

    __slots__ = ()

    data_type: DataType
    nullable: bool


@dataclass(frozen=True)
class ColRef(Expr):
    """Reference to a column by id."""

    cid: int
    name: str
    data_type: DataType
    nullable: bool = True

    def __str__(self) -> str:
        return f"{self.name}#{self.cid}"


@dataclass(frozen=True)
class Const(Expr):
    """A constant value."""

    value: object
    data_type: DataType

    @property
    def nullable(self) -> bool:  # type: ignore[override]
        return self.value is None

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A bind-time parameter slot in a *generic* (shape-cached) plan.

    Produced only when the binder runs with ``parameterize=True`` over a
    statement whose literals were slot-tagged by the parser.  Every
    optimizer pass treats the node as an opaque non-constant scalar (all
    value-dependent rewrites guard on :class:`Const`), so a plan optimized
    over Params is valid for *any* literal values of the same types — the
    plan cache substitutes real Consts at hit time.
    """

    slot: int
    data_type: DataType
    nullable: bool = False

    def __str__(self) -> str:
        return f"${self.slot}"


@dataclass(frozen=True)
class Call(Expr):
    """Operator or scalar-function application."""

    op: str
    args: tuple[Expr, ...]
    data_type: DataType
    nullable: bool = True

    def __str__(self) -> str:
        if self.op in _INFIX_OPS:
            return f"({f' {self.op} '.join(str(a) for a in self.args)})"
        if self.op == "ISNULL":
            return f"({self.args[0]} IS NULL)"
        if self.op == "ISNOTNULL":
            return f"({self.args[0]} IS NOT NULL)"
        return f"{self.op}({', '.join(str(a) for a in self.args)})"


_INFIX_OPS = {
    "=", "<>", "<", "<=", ">", ">=", "AND", "OR",
    "+", "-", "*", "/", "%", "||", "LIKE", "IN",
}


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE expression."""

    branches: tuple[tuple[Expr, Expr], ...]
    else_value: Expr | None
    data_type: DataType
    nullable: bool = True

    def __str__(self) -> str:
        body = " ".join(f"WHEN {c} THEN {v}" for c, v in self.branches)
        tail = f" ELSE {self.else_value}" if self.else_value is not None else ""
        return f"CASE {body}{tail} END"


@dataclass(frozen=True)
class Cast(Expr):
    """Explicit type conversion."""

    arg: Expr
    data_type: DataType
    nullable: bool = True

    def __str__(self) -> str:
        return f"CAST({self.arg} AS {self.data_type})"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A bound, uncorrelated scalar subquery.

    The executor resolves these to constants (under the query's snapshot)
    before evaluation; optimizer passes treat the node as an opaque,
    column-free expression.
    """

    plan: object  # LogicalOp; typed loosely to avoid an import cycle
    data_type: DataType
    nullable: bool = True

    def __str__(self) -> str:
        return "scalar_subquery(...)"

    def __eq__(self, other: object) -> bool:  # identity: plans are unique
        return self is other

    def __hash__(self) -> int:
        return id(self)


@dataclass(frozen=True)
class AggCall:
    """A bound aggregate call (COUNT/SUM/MIN/MAX/AVG).

    ``func`` is ``COUNT_STAR`` for ``COUNT(*)``.  ``allow_precision_loss``
    is the paper's §7.1 opt-in: when set, the optimizer may commute the
    aggregate with decimal rounding in its argument.
    """

    func: str
    arg: Expr | None
    data_type: DataType
    distinct: bool = False
    allow_precision_loss: bool = False

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        name = "COUNT" if self.func == "COUNT_STAR" else self.func
        suffix = " /*apl*/" if self.allow_precision_loss else ""
        return f"{name}({prefix}{inner}){suffix}"


# ---------------------------------------------------------------------------
# Traversal / rewriting helpers
# ---------------------------------------------------------------------------


def children_of(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, Cast):
        return (expr.arg,)
    if isinstance(expr, Case):
        parts: list[Expr] = []
        for cond, value in expr.branches:
            parts.append(cond)
            parts.append(value)
        if expr.else_value is not None:
            parts.append(expr.else_value)
        return tuple(parts)
    return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in children_of(expr):
        yield from walk(child)


def referenced_cids(expr: Expr | None) -> frozenset[int]:
    """All column ids referenced anywhere in ``expr``."""
    if expr is None:
        return frozenset()
    return frozenset(node.cid for node in walk(expr) if isinstance(node, ColRef))


def rewrite_expr(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite: ``fn`` may return a replacement or None to keep.

    Children are rewritten first, then ``fn`` is applied to the rebuilt node.
    """
    if isinstance(expr, Call):
        new_args = tuple(rewrite_expr(a, fn) for a in expr.args)
        if new_args != expr.args:
            expr = Call(expr.op, new_args, expr.data_type, expr.nullable)
    elif isinstance(expr, Cast):
        new_arg = rewrite_expr(expr.arg, fn)
        if new_arg is not expr.arg:
            expr = Cast(new_arg, expr.data_type, expr.nullable)
    elif isinstance(expr, Case):
        new_branches = tuple(
            (rewrite_expr(c, fn), rewrite_expr(v, fn)) for c, v in expr.branches
        )
        new_else = rewrite_expr(expr.else_value, fn) if expr.else_value is not None else None
        if new_branches != expr.branches or new_else is not expr.else_value:
            expr = Case(new_branches, new_else, expr.data_type, expr.nullable)
    replacement = fn(expr)
    return expr if replacement is None else replacement


def substitute_cids(expr: Expr, mapping: dict[int, Expr]) -> Expr:
    """Replace every ``ColRef`` whose cid is in ``mapping``."""
    if not mapping:
        return expr

    def replace(node: Expr) -> Expr | None:
        if isinstance(node, ColRef):
            return mapping.get(node.cid)
        return None

    return rewrite_expr(expr, replace)


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Call) and expr.op == "AND":
        result: list[Expr] = []
        for arg in expr.args:
            result.extend(conjuncts(arg))
        return result
    return [expr]


def make_and(parts: Iterable[Expr]) -> Expr | None:
    """Combine predicates with AND; None for an empty input."""
    items = [p for p in parts if p is not None]
    if not items:
        return None
    result = items[0]
    for part in items[1:]:
        result = Call("AND", (result, part), BOOLEAN, nullable=False)
    return result


def true_const() -> Const:
    return Const(True, BOOLEAN)


def false_const() -> Const:
    return Const(False, BOOLEAN)


def is_const_true(expr: Expr | None) -> bool:
    return isinstance(expr, Const) and expr.value is True


def is_const_false(expr: Expr | None) -> bool:
    return isinstance(expr, Const) and expr.value is False

"""Native Storage Extension (NSE) simulation: page-wise column access.

The paper (§2.2) describes NSE as a page-oriented layout for warm data: only
accessed pages are loaded into an in-memory buffer and evicted as needed,
instead of loading entire columns.  This module simulates that behaviour so
the storage ablation can contrast fully in-memory columns against page-wise
access under a constrained buffer:

- a column's rows are split into fixed-size pages;
- a :class:`PageBuffer` holds at most ``capacity`` pages with LRU eviction;
- reads count hits/misses (a miss models an I/O).

Switching a column between in-memory and page-wise is a metadata flip,
mirroring the paper's "change the metadata and reload" description.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .column import ColumnFragments

DEFAULT_PAGE_ROWS = 1024


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class PageBuffer:
    """A shared LRU buffer of column pages.

    ``metrics``, when given, is a
    :class:`repro.observability.metrics.MetricsRegistry`; hits, misses,
    and evictions then also feed ``nse.page_hits`` / ``nse.page_misses`` /
    ``nse.page_evictions`` counters so the buffer shows up on the scrape
    endpoint next to the rest of the engine.
    """

    def __init__(self, capacity: int, metrics=None):
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._pages: OrderedDict[tuple[int, int], list[object]] = OrderedDict()
        self.stats = BufferStats()
        if metrics is None:
            self._m_hits = self._m_misses = self._m_evictions = None
        else:
            self._m_hits = metrics.counter("nse.page_hits")
            self._m_misses = metrics.counter("nse.page_misses")
            self._m_evictions = metrics.counter("nse.page_evictions")

    def get(self, key: tuple[int, int], loader) -> list[object]:
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return page
        self.stats.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        page = loader()
        self._pages[key] = page
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()
        return page

    def resident_pages(self) -> int:
        return len(self._pages)


class PagedColumn:
    """Page-wise access wrapper over a column's fragments.

    ``store_id`` disambiguates columns sharing one buffer.  The backing
    fragments stay authoritative; the pages are decoded copies, as in a
    buffer pool.
    """

    _next_store_id = 0

    def __init__(
        self,
        fragments: ColumnFragments,
        buffer: PageBuffer,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ):
        self._fragments = fragments
        self._buffer = buffer
        self._page_rows = page_rows
        self._store_id = PagedColumn._next_store_id
        PagedColumn._next_store_id += 1

    def get(self, row: int) -> object:
        page_no = row // self._page_rows
        page = self._buffer.get(
            (self._store_id, page_no), lambda: self._load_page(page_no)
        )
        return page[row % self._page_rows]

    def values(self) -> list[object]:
        return [self.get(i) for i in range(len(self._fragments))]

    def _load_page(self, page_no: int) -> list[object]:
        start = page_no * self._page_rows
        end = min(start + self._page_rows, len(self._fragments))
        return [self._fragments.get(i) for i in range(start, end)]

    def __len__(self) -> int:
        return len(self._fragments)

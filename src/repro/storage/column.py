"""Columnar fragments: dictionary-encoded main + append-only delta.

The main fragment stores each column as a sorted dictionary of distinct
values plus an integer code vector (NULL is code ``-1``).  The delta fragment
is a plain append list.  ``delta merge`` rebuilds the main fragment from both
(the table orchestrates the merge across all of its columns so row ids stay
aligned).

The layout mirrors the paper's description of SAP HANA's column store (§2.2)
closely enough that the experiments exercise the same trade-offs: reads scan
a compressed main plus a small uncompressed delta; merges are periodic and
rebuild dictionaries.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from ..vectors import DictVector


def _sort_key(value: object):
    # Dictionary values are homogeneous per column in practice; the type tag
    # guards against mixed int/str columns constructed in tests.
    return (type(value).__name__, value)


BLOCK_ROWS = 1024


class MainFragment:
    """Read-optimized, dictionary-encoded storage for one column."""

    __slots__ = ("dictionary", "codes", "homogeneous", "_index", "_zone_map")

    def __init__(self, values: Iterable[object] = ()):
        materialized = list(values)
        distinct = sorted({v for v in materialized if v is not None}, key=_sort_key)
        self.dictionary: list[object] = distinct
        self._index: dict[object, int] = {v: i for i, v in enumerate(distinct)}
        self.codes = array("q", (self._encode(v) for v in materialized))
        #: Single-type dictionaries are value-ordered (the type-tagged sort
        #: key degenerates to plain value order), which is what lets range
        #: kernels bisect the dictionary and compare raw codes.
        self.homogeneous = (
            len({type(v) for v in distinct}) <= 1
        )
        self._zone_map: list[tuple[object, object, bool]] | None = None

    def _encode(self, value: object) -> int:
        return -1 if value is None else self._index[value]

    def __len__(self) -> int:
        return len(self.codes)

    def get(self, row: int) -> object:
        code = self.codes[row]
        return None if code < 0 else self.dictionary[code]

    def values(self) -> list[object]:
        """Decode the full fragment (vectorized via a local dictionary ref)."""
        dictionary = self.dictionary
        return [None if code < 0 else dictionary[code] for code in self.codes]

    def values_range(self, start: int, stop: int) -> list[object]:
        """Decode rows ``[start, stop)`` — the batched-scan fast path."""
        dictionary = self.dictionary
        return [None if code < 0 else dictionary[code] for code in self.codes[start:stop]]

    def distinct_count(self) -> int:
        return len(self.dictionary)

    def zone_map(self) -> list[tuple[object, object, bool]]:
        """Per-block (min, max, has_null) statistics over ``BLOCK_ROWS``-row
        blocks.  Because the dictionary is sorted, block min/max reduce to
        min/max over *codes* — no value decoding required."""
        if self._zone_map is None:
            zones: list[tuple[object, object, bool]] = []
            dictionary = self.dictionary
            for start in range(0, len(self.codes), BLOCK_ROWS):
                block = self.codes[start:start + BLOCK_ROWS]
                has_null = False
                low_code: int | None = None
                high_code: int | None = None
                for code in block:
                    if code < 0:
                        has_null = True
                        continue
                    if low_code is None or code < low_code:
                        low_code = code
                    if high_code is None or code > high_code:
                        high_code = code
                if low_code is None:
                    zones.append((None, None, has_null))
                else:
                    zones.append((dictionary[low_code], dictionary[high_code], has_null))
            self._zone_map = zones
        return self._zone_map

    def memory_codes_bytes(self) -> int:
        """Approximate compressed size of the code vector, for introspection."""
        return self.codes.itemsize * len(self.codes)


class DeltaFragment:
    """Write-optimized, uncompressed append-only storage for one column."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[object] = []

    def append(self, value: object) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def get(self, row: int) -> object:
        return self.values[row]


class ColumnFragments:
    """Main + delta pair for one column; rows are addressed globally.

    Row ids ``0 .. len(main)-1`` live in the main fragment; ids beyond that
    live in the delta at offset ``row - len(main)``.
    """

    __slots__ = ("main", "delta")

    def __init__(self, values: Iterable[object] = ()):
        self.main = MainFragment(values)
        self.delta = DeltaFragment()

    def __len__(self) -> int:
        return len(self.main) + len(self.delta)

    def append(self, value: object) -> None:
        self.delta.append(value)

    def get(self, row: int) -> object:
        main_len = len(self.main)
        if row < main_len:
            return self.main.get(row)
        return self.delta.get(row - main_len)

    def values(self) -> list[object]:
        return self.main.values() + list(self.delta.values)

    def get_range(self, start: int, stop: int) -> list[object]:
        """Decode the contiguous global row range ``[start, stop)``."""
        main_len = len(self.main)
        out: list[object] = []
        if start < main_len:
            out = self.main.values_range(start, min(stop, main_len))
        if stop > main_len:
            out.extend(self.delta.values[max(start - main_len, 0):stop - main_len])
        return out

    def get_many(self, row_ids) -> list[object]:
        """Decode an arbitrary list of global row ids (pruned/MVCC scans)."""
        main = self.main
        main_len = len(main)
        codes = main.codes
        dictionary = main.dictionary
        delta = self.delta.values
        out: list[object] = []
        for row in row_ids:
            if row < main_len:
                code = codes[row]
                out.append(None if code < 0 else dictionary[code])
            else:
                out.append(delta[row - main_len])
        return out

    def get_range_vector(self, start: int, stop: int):
        """Like :meth:`get_range`, but rows wholly inside the main fragment
        come back as a :class:`DictVector` sharing the fragment's dictionary
        and value index — no decoding.  Ranges touching the delta (or pure
        delta ranges) fall back to object lists."""
        main = self.main
        main_len = len(main)
        if stop <= main_len:
            return DictVector(
                main.dictionary, main.codes[start:stop], main.homogeneous, main._index
            )
        if start >= main_len:
            return self.delta.values[start - main_len:stop - main_len]
        return self.get_range(start, stop)

    def get_many_vector(self, row_ids):
        """Like :meth:`get_many`, but stays dictionary-coded (a pure code
        gather) when every requested row lives in the main fragment."""
        main = self.main
        main_len = len(main)
        codes = main.codes
        if all(row < main_len for row in row_ids):
            return DictVector(
                main.dictionary,
                array("q", (codes[row] for row in row_ids)),
                main.homogeneous,
                main._index,
            )
        return self.get_many(row_ids)

    def iter_values(self) -> Iterator[object]:
        dictionary = self.main.dictionary
        for code in self.main.codes:
            yield None if code < 0 else dictionary[code]
        yield from self.delta.values

    def merge(self) -> None:
        """Delta merge: rebuild the main fragment over all rows."""
        self.main = MainFragment(self.values())
        self.delta = DeltaFragment()

    @property
    def delta_size(self) -> int:
        return len(self.delta)

"""MVCC transaction management (snapshot isolation).

Rows carry a *creating* and a *deleting* transaction id (TID).  A TID
resolves to a commit timestamp once its transaction commits; the
:class:`TransactionManager` owns that mapping.  A row version is visible to a
transaction's snapshot when

- it was created by the reading transaction itself, or by a transaction that
  committed at or before the snapshot timestamp, and
- it was not deleted by the reading transaction, nor by any transaction that
  committed at or before the snapshot timestamp.

This is the scheme the paper attributes to SAP HANA (§2.2): writers never
block analytical readers, and every query sees a transactionally consistent
snapshot of the HTAP tables.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum

from ..errors import TransactionError

NO_TID = 0  # sentinel: "never deleted" / "created at bootstrap"


class TransactionStatus(Enum):
    ACTIVE = "ACTIVE"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


@dataclass
class Transaction:
    """A transaction handle: identity, snapshot, and undo bookkeeping."""

    tid: int
    snapshot_ts: int
    status: TransactionStatus = TransactionStatus.ACTIVE
    commit_ts: int | None = None
    # Undo log: (table, kind, row_id); kind is "insert" or "delete".
    undo: list[tuple[object, str, int]] = field(default_factory=list)

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE


class TransactionManager:
    """Allocates TIDs / commit timestamps and answers visibility questions.

    When constructed with a :class:`repro.storage.wal.WriteAheadLog`, commit
    and abort records are appended to it so recovery can tell committed work
    apart from in-flight work.
    """

    def __init__(self, wal=None, metrics=None, tracer=None) -> None:
        self._next_tid = 1
        self._next_commit_ts = 1
        self._commit_ts: dict[int, int] = {}
        self._aborted: set[int] = set()
        self._active: dict[int, Transaction] = {}
        # Serializes lifecycle transitions: TID / commit-timestamp
        # allocation and the active set are shared mutable state, and
        # concurrent sessions must never observe (or allocate) a torn
        # view of them.  Reentrant because rollback runs table undo hooks
        # that may consult visibility.
        self._lock = threading.RLock()
        self._wal = wal
        self._tracer = tracer
        # Pre-resolved counter handles: commit/abort are hot paths.
        self._m_commits = None if metrics is None else metrics.counter("txn.commits")
        self._m_aborts = None if metrics is None else metrics.counter("txn.aborts")

    # -- lifecycle --------------------------------------------------------

    def begin(self) -> Transaction:
        with self._lock:
            tid = self._next_tid
            self._next_tid += 1
            txn = Transaction(tid=tid, snapshot_ts=self._next_commit_ts - 1)
            self._active[tid] = txn
        return txn

    def commit(self, txn: Transaction) -> int:
        with self._lock:
            if not txn.is_active:
                raise TransactionError(f"transaction {txn.tid} is not active")
            ts = self._next_commit_ts
            self._next_commit_ts += 1
            self._commit_ts[txn.tid] = ts
            txn.commit_ts = ts
            txn.status = TransactionStatus.COMMITTED
            txn.undo.clear()
            del self._active[txn.tid]
            if self._wal is not None:
                self._wal.log_commit(txn.tid)
        if self._m_commits is not None:
            self._m_commits.inc()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event("mvcc.commit", tid=txn.tid, commit_ts=ts)
        return ts

    def rollback(self, txn: Transaction) -> None:
        with self._lock:
            if not txn.is_active:
                raise TransactionError(f"transaction {txn.tid} is not active")
            for table, kind, row_id in reversed(txn.undo):
                table._undo(kind, row_id)  # type: ignore[attr-defined]
            txn.undo.clear()
            self._aborted.add(txn.tid)
            txn.status = TransactionStatus.ABORTED
            del self._active[txn.tid]
            if self._wal is not None:
                self._wal.log_abort(txn.tid)
        if self._m_aborts is not None:
            self._m_aborts.inc()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event("mvcc.abort", tid=txn.tid)

    # -- visibility --------------------------------------------------------

    def commit_ts_of(self, tid: int) -> int | None:
        """The commit timestamp of ``tid``; None if in flight or aborted."""
        if tid == NO_TID:
            return 0
        return self._commit_ts.get(tid)

    def was_committed_before(self, tid: int, snapshot_ts: int) -> bool:
        ts = self.commit_ts_of(tid)
        return ts is not None and ts <= snapshot_ts

    def is_visible(self, created_tid: int, deleted_tid: int, txn: Transaction) -> bool:
        """Visibility of one row version to ``txn``'s snapshot."""
        created_ok = created_tid == txn.tid or self.was_committed_before(
            created_tid, txn.snapshot_ts
        )
        if not created_ok:
            return False
        if deleted_tid == NO_TID:
            return True
        deleted_applies = deleted_tid == txn.tid or self.was_committed_before(
            deleted_tid, txn.snapshot_ts
        )
        return not deleted_applies

    @property
    def active_count(self) -> int:
        return len(self._active)

    def oldest_active_snapshot(self) -> int:
        """Snapshot horizon below which dead versions can be reclaimed."""
        if not self._active:
            return self._next_commit_ts - 1
        return min(t.snapshot_ts for t in self._active.values())

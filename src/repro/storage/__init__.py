"""In-memory columnar storage substrate.

Models the storage architecture the paper describes for SAP HANA (§2.2):

- column tables with a read-optimized, dictionary-encoded **main** fragment
  and a write-optimized append-only **delta** fragment, merged on demand
  (:mod:`repro.storage.column`, :mod:`repro.storage.table`);
- MVCC snapshot isolation so analytical reads run concurrently with
  transactional writes (:mod:`repro.storage.mvcc`);
- ARIES-style write-ahead logging with replay recovery
  (:mod:`repro.storage.wal`) and a crash-consistent segmented on-disk
  variant with CRC framing, fsync policies, and checkpoint/truncate
  (:mod:`repro.storage.wal_disk`);
- a page-buffer simulation of the Native Storage Extension
  (:mod:`repro.storage.nse`).
"""

from .column import ColumnFragments, DeltaFragment, MainFragment  # noqa: F401
from .mvcc import Transaction, TransactionManager, TransactionStatus  # noqa: F401
from .table import ColumnTable  # noqa: F401
from .wal import LogRecord, WriteAheadLog  # noqa: F401
from .wal_disk import DiskWriteAheadLog  # noqa: F401

"""Crash-consistent, segmented on-disk write-ahead log.

Extends the in-memory :class:`~repro.storage.wal.WriteAheadLog` with real
durability:

- **Segmented log files** (``wal-00000001.seg``, ...) under ``wal_dir``;
  a fresh segment is opened per process attach and rolled once it exceeds
  ``segment_bytes``.
- **CRC32 framing**: every record is ``<length, crc32>`` header + JSON
  payload, so a torn write (crash mid-append) is detectable.
- **Fsync policies**: ``always`` (every record), ``commit`` (commit, DDL,
  and checkpoint records — the durability point that matters for the
  committed-data invariant), ``never`` (OS buffering only; fastest, used
  by benchmarks).
- **Checkpoints**: :meth:`write_checkpoint` atomically persists a full
  engine snapshot (schemas + committed rows + view DDL) via
  write-to-temp + ``fsync`` + ``os.replace``, then truncates every fully
  covered log segment.
- **Torn-tail recovery**: on attach, segments are scanned record by
  record; the first frame with a bad length or CRC marks the torn tail,
  which is truncated (``wal.torn_tail_truncations``) with a warning
  instead of failing recovery.  A corrupt checkpoint file falls back to
  the previous checkpoint (or none) the same way.

Counters (when built with a metrics registry): ``wal.appends``,
``wal.fsyncs``, ``wal.checkpoints``, ``wal.torn_tail_truncations``.
Fault points: ``wal.append`` (before the record is admitted),
``wal.fsync`` (after the buffered write, before ``os.fsync``),
``wal.checkpoint`` (at checkpoint start) — see :mod:`repro.faults`.
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zlib
from typing import Iterator

from ..catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from ..datatypes import DataType, TypeKind
from ..errors import TransactionError
from .wal import LogRecord, WriteAheadLog, record_from_json, record_to_json

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
FSYNC_POLICIES = ("always", "commit", "never")
_DURABLE_KINDS = ("commit", "ddl", "ddl_view", "ddl_drop")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _iter_frames(data: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(end_offset, payload)`` for each valid frame; stop at the
    first torn or corrupt one."""
    offset = 0
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        payload = data[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return
        yield start + length, payload
        offset = start + length


class DiskWriteAheadLog(WriteAheadLog):
    """A WAL whose records live in ``wal_dir`` as CRC-framed segments."""

    durable = True

    def __init__(
        self,
        wal_dir: str,
        fsync: str = "commit",
        segment_bytes: int = 4 << 20,
        metrics=None,
        tracer=None,
        faults=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        super().__init__(metrics=metrics, tracer=tracer, faults=faults)
        self.wal_dir = str(wal_dir)
        self.fsync_policy = fsync
        self._segment_bytes = segment_bytes
        self._handle = None
        os.makedirs(self.wal_dir, exist_ok=True)
        if metrics is None:
            self._m_fsyncs = self._m_checkpoints = self._m_torn = None
        else:
            self._m_fsyncs = metrics.counter("wal.fsyncs")
            self._m_checkpoints = metrics.counter("wal.checkpoints")
            self._m_torn = metrics.counter("wal.torn_tail_truncations")
        #: Decoded payload of the newest valid checkpoint (None if none).
        self.checkpoint_state: dict | None = None
        #: LSN through which the checkpoint covers the log (0 if none).
        self.checkpoint_lsn = 0
        self._load_checkpoint()
        self._segment_index = self._load_segments()
        self._open_segment()

    # -- attach-time loading ----------------------------------------------

    def _segment_paths(self) -> list[str]:
        names = sorted(
            n for n in os.listdir(self.wal_dir)
            if n.startswith("wal-") and n.endswith(".seg")
        )
        return [os.path.join(self.wal_dir, n) for n in names]

    def _checkpoint_paths(self) -> list[str]:
        names = sorted(
            n for n in os.listdir(self.wal_dir)
            if n.startswith("checkpoint-") and n.endswith(".ckpt")
        )
        return [os.path.join(self.wal_dir, n) for n in names]

    def _load_checkpoint(self) -> None:
        """Adopt the newest checkpoint whose frame verifies; warn and fall
        back on corruption (the previous checkpoint is still consistent)."""
        for path in reversed(self._checkpoint_paths()):
            with open(path, "rb") as handle:
                data = handle.read()
            frames = list(_iter_frames(data))
            if len(frames) != 1 or frames[0][0] != len(data):
                warnings.warn(
                    f"WAL checkpoint {path} is corrupt; falling back",
                    stacklevel=2,
                )
                if self._m_torn is not None:
                    self._m_torn.inc()
                continue
            try:
                state = json.loads(frames[0][1])
            except json.JSONDecodeError:
                warnings.warn(
                    f"WAL checkpoint {path} holds invalid JSON; falling back",
                    stacklevel=2,
                )
                continue
            self.checkpoint_state = state
            self.checkpoint_lsn = int(state.get("last_lsn", 0))
            return

    def _load_segments(self) -> int:
        """Scan all segments into memory, truncating the torn tail.

        Returns the next free segment index.  Records fully covered by the
        adopted checkpoint are skipped (they can linger when a crash hit
        between checkpoint rename and segment deletion).
        """
        last_index = 0
        torn = False
        for path in self._segment_paths():
            last_index = int(os.path.basename(path)[4:-4])
            if torn:
                # Nothing after a torn tail is trustworthy; a real crash
                # cannot produce valid segments beyond the tear.
                warnings.warn(
                    f"WAL segment {path} follows a torn tail; ignoring",
                    stacklevel=2,
                )
                continue
            with open(path, "rb") as handle:
                data = handle.read()
            valid_through = 0
            for end, payload in _iter_frames(data):
                try:
                    record = record_from_json(json.loads(payload))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    break
                valid_through = end
                if record.lsn > self.checkpoint_lsn:
                    self._records.append(record)
                self._next_lsn = max(self._next_lsn, record.lsn + 1)
            if valid_through < len(data):
                torn = True
                with open(path, "r+b") as handle:
                    handle.truncate(valid_through)
                warnings.warn(
                    f"WAL segment {path}: truncated torn tail at byte "
                    f"{valid_through} of {len(data)}",
                    stacklevel=2,
                )
                if self._m_torn is not None:
                    self._m_torn.inc()
        self._next_lsn = max(self._next_lsn, self.checkpoint_lsn + 1)
        return last_index + 1

    # -- appending ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def _open_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
        path = os.path.join(self.wal_dir, f"wal-{self._segment_index:08d}.seg")
        self._segment_index += 1
        self._handle = open(path, "ab")
        self._segment_path = path

    def _persist(self, record: LogRecord) -> None:
        payload = json.dumps(record_to_json(record)).encode("utf-8")
        self._handle.write(_frame(payload))
        self._handle.flush()
        if self.fsync_policy == "always" or (
            self.fsync_policy == "commit" and record.kind in _DURABLE_KINDS
        ):
            self.sync()
        if self._handle.tell() >= self._segment_bytes:
            self._open_segment()

    def sync(self) -> None:
        """Fsync the active segment (the ``wal.fsync`` fault point fires
        after the buffered write, before the data is durable)."""
        with self._append_lock:
            if self._handle is None:
                return  # closed underneath us during shutdown
            if self._faults is not None:
                self._faults.fire("wal.fsync", segment=self._segment_path)
            os.fsync(self._handle.fileno())
        if self._m_fsyncs is not None:
            self._m_fsyncs.inc()

    def close(self) -> None:
        with self._append_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def segment_info(self) -> list[tuple]:
        """(segment, bytes, records, durable) rows for ``sys.wal_segments``.

        Byte sizes come from the filesystem; per-segment record counts are
        not tracked (counting would mean re-parsing every frame), so the
        column is NULL for disk segments.
        """
        rows = []
        for path in self._segment_paths():
            try:
                size = os.path.getsize(path)
            except OSError:
                size = None
            rows.append((os.path.basename(path), size, None, True))
        return rows

    # -- DDL records --------------------------------------------------------

    def log_ddl(self, table: str, schema_dict: dict) -> LogRecord:
        return self._append(0, "ddl", table, schema_dict)

    def log_ddl_view(self, view: str, sql: str) -> LogRecord:
        return self._append(0, "ddl_view", view, sql)

    def log_drop(self, name: str, kind: str) -> LogRecord:
        """``kind`` is ``"TABLE"`` or ``"VIEW"``."""
        return self._append(0, "ddl_drop", name, kind)

    # -- checkpointing -------------------------------------------------------

    def write_checkpoint(self, state: dict) -> str:
        """Atomically persist ``state`` and truncate covered segments.

        ``state`` is the engine snapshot built by
        :meth:`repro.database.Database.checkpoint`; this method stamps it
        with ``last_lsn`` and owns the file dance: temp write + fsync +
        atomic rename, then older checkpoints and fully covered segments
        are deleted.  A crash anywhere in between leaves a recoverable
        directory (the newest *valid* checkpoint wins; stale segments are
        skipped by LSN on the next attach).
        """
        if self._faults is not None:
            self._faults.fire("wal.checkpoint")
        with self._append_lock:
            return self._write_checkpoint_locked(state)

    def _write_checkpoint_locked(self, state: dict) -> str:
        state = dict(state)
        state["last_lsn"] = self.last_lsn
        payload = json.dumps(state, default=str).encode("utf-8")
        final = os.path.join(
            self.wal_dir, f"checkpoint-{self.last_lsn:016d}.ckpt"
        )
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(_frame(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc()
        # Everything logged so far is covered by the checkpoint: drop the
        # old segments and checkpoints, and restart the in-memory view.
        self.close()
        for path in self._checkpoint_paths():
            if path != final:
                os.unlink(path)
        for path in self._segment_paths():
            os.unlink(path)
        self._records = []
        self.checkpoint_state = state
        self.checkpoint_lsn = self.last_lsn
        self._open_segment()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event("wal.checkpoint", last_lsn=self.checkpoint_lsn)
        return final


# -- schema (de)serialization for checkpoints and DDL records ---------------


def schema_to_dict(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": c.name,
                "kind": c.data_type.kind.value,
                "precision": c.data_type.precision,
                "scale": c.data_type.scale,
                "length": c.data_type.length,
                "nullable": c.nullable,
            }
            for c in schema.columns
        ],
        "unique": [
            {"columns": list(u.columns), "primary": u.is_primary}
            for u in schema.unique_constraints
        ],
    }


def schema_from_dict(data: dict) -> TableSchema:
    try:
        columns = [
            ColumnSchema(
                c["name"],
                DataType(
                    TypeKind(c["kind"]),
                    precision=c.get("precision"),
                    scale=c.get("scale"),
                    length=c.get("length"),
                ),
                c.get("nullable", True),
            )
            for c in data["columns"]
        ]
        constraints = [
            UniqueConstraint(tuple(u["columns"]), u.get("primary", False))
            for u in data.get("unique", [])
        ]
        return TableSchema(data["name"], columns, constraints)
    except (KeyError, TypeError, ValueError) as exc:
        raise TransactionError(f"malformed schema payload in WAL: {exc}") from exc

"""Column tables: fragments + MVCC row versions + constraints.

A :class:`ColumnTable` stores one fragment pair per column plus two parallel
version vectors (``created_tids`` / ``deleted_tids``).  Row ids are stable
for the lifetime of the table (delta merge recompresses values but does not
renumber rows); deleted rows are reclaimed only by :meth:`vacuum`.
"""

from __future__ import annotations

import threading
from array import array
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from ..errors import ConstraintError, ExecutionError
from ..catalog.schema import TableSchema
from .column import ColumnFragments
from .mvcc import NO_TID, Transaction, TransactionManager

if TYPE_CHECKING:  # pragma: no cover
    from .wal import WriteAheadLog


class ColumnTable:
    """One HTAP column table with delta/main fragments and MVCC versions."""

    def __init__(
        self,
        schema: TableSchema,
        txn_manager: TransactionManager,
        wal: "WriteAheadLog | None" = None,
        faults=None,
    ):
        self.schema = schema
        self._txns = txn_manager
        self.wal = wal
        self._faults = faults
        self._columns: dict[str, ColumnFragments] = {
            col.name: ColumnFragments() for col in schema.columns
        }
        # Serializes writers (insert/delete/bulk_load/merge/vacuum/DDL).
        # Readers stay lock-free: they snapshot ``len(created_tids)`` once
        # and never read past it, and _append_row appends column values
        # *before* created_tids so a row only becomes countable once its
        # values are all in place.  Lock ordering is txn-lock < table-lock
        # < wal-lock (rollback: txn->table; insert: table->wal).
        self._write_lock = threading.RLock()
        self.created_tids = array("q")
        self.deleted_tids = array("q")
        # Fast-path flag: while every row was bulk-loaded (created at
        # bootstrap, never deleted), every snapshot sees all rows and scans
        # skip per-row visibility checks entirely.
        self._mvcc_dirty = False
        # One multimap per unique constraint: key tuple -> candidate row ids.
        # Entries are superset approximations; visibility is re-checked on use.
        self._unique_indexes: list[dict[tuple, set[int]]] = [
            {} for _ in schema.unique_constraints
        ]

    # -- basic shape ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.created_tids)

    @property
    def delta_size(self) -> int:
        first = next(iter(self._columns.values()), None)
        return first.delta_size if first is not None else 0

    def column(self, name: str) -> ColumnFragments:
        return self._columns[name.lower()]

    # -- loading and mutation ----------------------------------------------

    def bulk_load(self, rows: Iterable[Sequence[object]], merge: bool = True) -> int:
        """Load rows outside any transaction (visible to every snapshot).

        Used by workload generators; validates types and unique constraints,
        then optionally performs an immediate delta merge so benchmarks start
        from a compressed main fragment.
        """
        count = 0
        log_rows = self.wal is not None and getattr(self.wal, "durable", False)
        with self._write_lock:
            for row in rows:
                row_id = self._append_row(row, NO_TID, validate_unique=True)
                if log_rows:
                    # Durable WALs must cover the generator fast path too, or
                    # bulk-loaded tables would come back empty after recovery.
                    self.wal.log_insert(
                        NO_TID, self.schema.name,
                        tuple(self._row_values(row_id)), row_id,
                    )
                count += 1
            if merge and count:
                self.merge_delta()
        return count

    def insert(self, txn: Transaction, row: Sequence[object]) -> int:
        """Insert one row in ``txn``; returns the new row id."""
        if self._faults is not None:
            self._faults.fire("storage.insert", table=self.schema.name)
        with self._write_lock:
            row_id = self._append_row(row, txn.tid, validate_unique=True)
            txn.undo.append((self, "insert", row_id))
            if self.wal is not None:
                self.wal.log_insert(
                    txn.tid, self.schema.name, tuple(self._row_values(row_id)), row_id
                )
        return row_id

    def delete_row(self, txn: Transaction, row_id: int) -> None:
        """Mark ``row_id`` deleted by ``txn`` (it must be visible to it)."""
        if self._faults is not None:
            self._faults.fire("storage.delete", table=self.schema.name)
        with self._write_lock:
            if not self.is_visible(row_id, txn):
                raise ExecutionError(f"row {row_id} is not visible to transaction {txn.tid}")
            deleter = self.deleted_tids[row_id]
            if deleter != NO_TID and self._txns.commit_ts_of(deleter) is None and deleter != txn.tid:
                # Another in-flight transaction already deleted it: write conflict.
                raise ConstraintError(
                    f"write-write conflict on {self.schema.name!r} row {row_id}"
                )
            self.deleted_tids[row_id] = txn.tid
            self._mvcc_dirty = True
            txn.undo.append((self, "delete", row_id))
            if self.wal is not None:
                self.wal.log_delete(txn.tid, self.schema.name, row_id)

    def update_row(self, txn: Transaction, row_id: int, new_row: Sequence[object]) -> int:
        """MVCC update = delete old version + insert new version."""
        with self._write_lock:
            self.delete_row(txn, row_id)
            return self.insert(txn, new_row)

    def _append_row(self, row: Sequence[object], created_tid: int, validate_unique: bool) -> int:
        columns = self.schema.columns
        if len(row) != len(columns):
            raise ExecutionError(
                f"expected {len(columns)} values for {self.schema.name!r}, got {len(row)}"
            )
        coerced = []
        for col, value in zip(columns, row):
            if value is None and not col.nullable:
                raise ConstraintError(
                    f"NULL in NOT NULL column {self.schema.name}.{col.name}"
                )
            coerced.append(col.data_type.validate(value))
        if validate_unique:
            self._check_unique(coerced, created_tid)
        row_id = len(self.created_tids)
        for col, value in zip(columns, coerced):
            self._columns[col.name].append(value)
        self.created_tids.append(created_tid)
        self.deleted_tids.append(NO_TID)
        if created_tid != NO_TID:
            self._mvcc_dirty = True
        self._index_row(row_id, coerced)
        return row_id

    def _row_values(self, row_id: int) -> list[object]:
        return [self._columns[c.name].get(row_id) for c in self.schema.columns]

    # -- uniqueness ---------------------------------------------------------

    def _key_of(self, constraint_index: int, values: Sequence[object]) -> tuple | None:
        constraint = self.schema.unique_constraints[constraint_index]
        key = tuple(values[self.schema.column_index(c)] for c in constraint.columns)
        return None if any(v is None for v in key) else key

    def _index_row(self, row_id: int, values: Sequence[object]) -> None:
        for i in range(len(self._unique_indexes)):
            key = self._key_of(i, values)
            if key is not None:
                self._unique_indexes[i].setdefault(key, set()).add(row_id)

    def _unindex_row(self, row_id: int, values: Sequence[object]) -> None:
        for i in range(len(self._unique_indexes)):
            key = self._key_of(i, values)
            if key is not None:
                bucket = self._unique_indexes[i].get(key)
                if bucket is not None:
                    bucket.discard(row_id)
                    if not bucket:
                        del self._unique_indexes[i][key]

    def _check_unique(self, values: Sequence[object], writer_tid: int) -> None:
        for i, constraint in enumerate(self.schema.unique_constraints):
            key = self._key_of(i, values)
            if key is None:
                continue  # SQL semantics: NULLs never collide
            for row_id in self._unique_indexes[i].get(key, ()):
                if self._version_conflicts(row_id, writer_tid):
                    label = "PRIMARY KEY" if constraint.is_primary else "UNIQUE"
                    raise ConstraintError(
                        f"{label} violation on {self.schema.name}({', '.join(constraint.columns)})"
                        f": duplicate key {key!r}"
                    )

    def _version_conflicts(self, row_id: int, writer_tid: int) -> bool:
        """Would a row with the same key conflict with a write by ``writer_tid``?

        A candidate conflicts when its creating version is *live*: committed
        and not deleted by a committed deleter, or created/retained by the
        writer itself, or created by another in-flight transaction (a
        would-be write-write race, rejected conservatively).
        """
        created = self.created_tids[row_id]
        deleted = self.deleted_tids[row_id]
        created_live = (
            created == NO_TID
            or created == writer_tid
            or self._txns.commit_ts_of(created) is not None
            or self._is_in_flight(created)
        )
        if not created_live:
            return False
        if deleted == NO_TID:
            return True
        if deleted == writer_tid:
            return False  # the writer already deleted the old version
        # A committed delete frees the key; an in-flight or aborted deleter
        # leaves the old version (potentially) alive, so conflict.
        return self._txns.commit_ts_of(deleted) is None

    def _is_in_flight(self, tid: int) -> bool:
        return (
            tid != NO_TID
            and self._txns.commit_ts_of(tid) is None
            and tid not in self._txns._aborted
        )

    def _undo(self, kind: str, row_id: int) -> None:
        """Rollback hook: clean auxiliary structures (visibility is handled
        by the aborted-TID set in the transaction manager)."""
        with self._write_lock:
            if kind == "insert":
                self._unindex_row(row_id, self._row_values(row_id))
            elif kind == "delete":
                self.deleted_tids[row_id] = NO_TID

    # -- reads ----------------------------------------------------------------

    def is_visible(self, row_id: int, txn: Transaction) -> bool:
        return self._txns.is_visible(self.created_tids[row_id], self.deleted_tids[row_id], txn)

    def visible_row_ids(self, txn: Transaction) -> "list[int] | range":
        if not self._mvcc_dirty:
            return range(len(self.created_tids))
        created = self.created_tids
        deleted = self.deleted_tids
        is_visible = self._txns.is_visible
        return [i for i in range(len(created)) if is_visible(created[i], deleted[i], txn)]

    def read_columns(self, txn: Transaction, names: Sequence[str]) -> tuple[list[list[object]], int]:
        """Read a snapshot of the named columns.

        Returns ``(columns, row_count)`` where each column is a dense list of
        visible values in row-id order — the engine's scan primitive.
        """
        row_ids = self.visible_row_ids(txn)
        count = len(row_ids)
        columns: list[list[object]] = []
        for name in names:
            fragments = self.column(name)
            if isinstance(row_ids, range):
                # Fast path: all rows visible at snapshot time.  Decode by
                # explicit range, never ``fragments.values()``: a concurrent
                # writer may have appended column values past the row-count
                # snapshot (values land before created_tids), and the full
                # decode would tear — more values than counted rows.
                columns.append(fragments.get_range(0, count))
            else:
                columns.append([fragments.get(i) for i in row_ids])
        return columns, count

    def read_column_batches(
        self,
        txn: Transaction,
        names: Sequence[str],
        batch_size: int,
        row_ids: "Sequence[int] | range | None" = None,
        vectorized: bool = False,
    ) -> Iterator[tuple[list[list[object]], int]]:
        """Stream a snapshot of the named columns in ``batch_size`` batches.

        Yields ``(columns, row_count)`` tuples in row-id order.  ``row_ids``
        lets block pruning compose with streaming: a caller that already
        narrowed the scan (zone maps, visibility) passes the surviving ids
        and each batch decodes only those.  Contiguous ranges (the common
        all-visible case) decode via fragment slices rather than per-row
        lookups.  With ``vectorized`` the main-fragment portion of a batch
        stays dictionary-coded (a :class:`DictVector` sharing the fragment
        dictionary) instead of decoding to Python objects.  With no names
        the batches still carry ``row_count`` — the zero-column
        ``COUNT(*)`` input.
        """
        if row_ids is None:
            row_ids = self.visible_row_ids(txn)
        fragments = [self.column(name) for name in names]
        contiguous = isinstance(row_ids, range) and row_ids.step == 1
        total = len(row_ids)
        for start in range(0, total, batch_size):
            ids = row_ids[start:start + batch_size]
            if contiguous:
                if vectorized:
                    columns = [
                        f.get_range_vector(ids.start, ids.stop) for f in fragments
                    ]
                else:
                    columns = [f.get_range(ids.start, ids.stop) for f in fragments]
            elif vectorized:
                columns = [f.get_many_vector(ids) for f in fragments]
            else:
                columns = [f.get_many(ids) for f in fragments]
            yield columns, len(ids)

    def scan_rows(self, txn: Transaction) -> Iterator[tuple[int, list[object]]]:
        for row_id in self.visible_row_ids(txn):
            yield row_id, self._row_values(row_id)

    def visible_row_count(self, txn: Transaction) -> int:
        return len(self.visible_row_ids(txn))

    # -- schema evolution -------------------------------------------------------

    def add_column(self, column, default: object = None) -> None:
        """Add a column to the table (the §5 custom-fields extension).

        Existing rows get ``default``.  The column must be nullable unless a
        non-NULL default is supplied.
        """
        from ..catalog.schema import ColumnSchema

        assert isinstance(column, ColumnSchema)
        if self.schema.has_column(column.name):
            raise ConstraintError(
                f"column {column.name!r} already exists on {self.schema.name!r}"
            )
        if not column.nullable and default is None:
            raise ConstraintError(
                f"new NOT NULL column {column.name!r} requires a default"
            )
        if default is not None:
            default = column.data_type.validate(default)
        with self._write_lock:
            # Dict entry first, schema second: a concurrent reader that sees
            # the new column in the schema must find its fragments.
            self._columns[column.name] = ColumnFragments(
                [default] * len(self.created_tids)
            )
            self.schema.columns.append(column)

    # -- maintenance ---------------------------------------------------------

    def merge_delta(self) -> None:
        """Merge every column's delta into its main fragment (§2.2).

        Copy-on-write per column: a fresh merged ``ColumnFragments`` is
        built and swapped into the dict in one atomic store, so lock-free
        readers holding the old object keep a consistent main+delta pair.
        (In-place ``fragments.merge()`` would momentarily show the merged
        main *and* the not-yet-cleared delta: duplicated rows.)
        """
        with self._write_lock:
            for name, fragments in list(self._columns.items()):
                self._columns[name] = ColumnFragments(fragments.values())

    def vacuum(self) -> int:
        """Physically remove versions dead to every possible snapshot.

        Returns the number of reclaimed rows.  Row ids are renumbered, so
        this must not run while queries are executing — the serving layer
        never calls it; embedded callers must quiesce first.  The write
        lock below still excludes concurrent writers.
        """
        with self._write_lock:
            return self._vacuum_locked()

    def _vacuum_locked(self) -> int:
        horizon = self._txns.oldest_active_snapshot()
        keep: list[int] = []
        for row_id in range(len(self.created_tids)):
            created = self.created_tids[row_id]
            deleted = self.deleted_tids[row_id]
            dead_delete = deleted != NO_TID and self._txns.was_committed_before(deleted, horizon)
            aborted_insert = created != NO_TID and created in self._txns._aborted
            if not (dead_delete or aborted_insert):
                keep.append(row_id)
        reclaimed = len(self.created_tids) - len(keep)
        if reclaimed == 0:
            return 0
        for name, fragments in list(self._columns.items()):
            values = [fragments.get(i) for i in keep]
            new_fragments = ColumnFragments(values)
            self._columns[name] = new_fragments
        self.created_tids = array("q", (self.created_tids[i] for i in keep))
        self.deleted_tids = array("q", (self.deleted_tids[i] for i in keep))
        self._unique_indexes = [{} for _ in self.schema.unique_constraints]
        for new_id in range(len(keep)):
            self._index_row(new_id, self._row_values(new_id))
        return reclaimed

    # -- statistics ------------------------------------------------------------

    def estimated_row_count(self) -> int:
        return len(self.created_tids)

    def estimated_distinct(self, column: str) -> int:
        fragments = self.column(column)
        distinct = fragments.main.distinct_count()
        if fragments.delta_size:
            distinct += len(set(fragments.delta.values)) // 2 + 1
        return max(distinct, 1)

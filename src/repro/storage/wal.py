"""ARIES-style write-ahead logging (simplified) with replay recovery.

Every data modification appends a logical log record before the in-memory
structures change durably visible; COMMIT/ABORT records close a transaction.
:func:`WriteAheadLog.recover` replays only committed transactions into fresh
tables — the invariant the paper cites for SAP HANA (§2.2): *all committed
changes are in durable storage when a transaction commits*.

The log lives in memory as a list of :class:`LogRecord` and can be exported
to / imported from a JSON-lines file for durability tests.  The
crash-consistent on-disk variant (segmented files, CRC32 framing, fsync
policies, checkpoints) is :class:`repro.storage.wal_disk.DiskWriteAheadLog`.
"""

from __future__ import annotations

import contextlib
import datetime
import decimal
import json
import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from ..catalog.catalog import Catalog
    from .mvcc import TransactionManager


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry.

    ``kind`` is one of ``insert``, ``delete``, ``commit``, ``abort``, or
    ``ddl`` (disk WAL only: schema payloads for CREATE/DROP TABLE).
    ``payload`` is the inserted row tuple for inserts, the row id for
    deletes, a schema dict for DDL, and None otherwise.  ``row_id``, when
    present on inserts, is the row id the insert produced — recovery uses
    it to resolve later deletes without re-deriving id assignment.
    """

    lsn: int
    tid: int
    kind: str
    table: str | None = None
    payload: object = None
    row_id: int | None = None


class WriteAheadLog:
    """Append-only logical redo log.

    ``metrics``, when given, is a
    :class:`repro.observability.metrics.MetricsRegistry`; every appended
    record increments its ``wal.appends`` counter, and every
    :meth:`recover` bumps ``wal.replays`` / ``wal.replayed_rows``.
    ``tracer``, when given, is a
    :class:`repro.observability.spans.SpanTracer`: appends made inside a
    traced query attach a ``wal.append`` event to the current span.
    ``faults``, when given, is a :class:`repro.faults.FaultInjector`; the
    ``wal.append`` fault point fires before each record is admitted.
    """

    def __init__(self, metrics=None, tracer=None, faults=None) -> None:
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        # Serializes LSN allocation, the record append, and _persist (file
        # write + fsync + segment roll in the disk subclass) so concurrent
        # sessions can't interleave half-written frames.  Innermost lock in
        # the txn-lock < table-lock < wal-lock ordering; reentrant because
        # the disk _persist calls sync() which also takes it.
        self._append_lock = threading.RLock()
        self._metrics = metrics
        self._tracer = tracer
        self._faults = faults
        self._suppress = False
        self._m_appends = None if metrics is None else metrics.counter("wal.appends")

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[LogRecord]:
        return list(self._records)

    @contextlib.contextmanager
    def suppressed(self):
        """No-op every append inside the block.

        Recovery replays operations through the ordinary table/transaction
        code paths, which would otherwise re-log every replayed record —
        doubling the log on each recovery.
        """
        self._suppress = True
        try:
            yield
        finally:
            self._suppress = False

    def _append(
        self, tid: int, kind: str, table: str | None = None,
        payload: object = None, row_id: int | None = None,
    ) -> LogRecord:
        if self._suppress:
            return LogRecord(0, tid, kind, table, payload, row_id)
        if self._faults is not None:
            self._faults.fire("wal.append", kind=kind, table=table)
        with self._append_lock:
            record = LogRecord(self._next_lsn, tid, kind, table, payload, row_id)
            self._next_lsn += 1
            self._records.append(record)
            self._persist(record)
        if self._m_appends is not None:
            self._m_appends.inc()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event("wal.append", kind=kind, lsn=record.lsn)
        return record

    def _persist(self, record: LogRecord) -> None:
        """Durability hook; the in-memory log keeps records in RAM only."""

    def log_insert(
        self, tid: int, table: str, row: tuple, row_id: int | None = None
    ) -> LogRecord:
        return self._append(tid, "insert", table, row, row_id)

    def log_delete(self, tid: int, table: str, row_id: int) -> LogRecord:
        return self._append(tid, "delete", table, row_id)

    def log_commit(self, tid: int) -> LogRecord:
        return self._append(tid, "commit")

    def log_abort(self, tid: int) -> LogRecord:
        return self._append(tid, "abort")

    def segment_info(self) -> list[tuple]:
        """(segment, bytes, records, durable) rows for ``sys.wal_segments``.

        The in-memory log has no files: one synthetic row describing the
        RAM-resident record list.
        """
        return [("(memory)", None, len(self._records), False)]

    # -- recovery ---------------------------------------------------------

    def committed_tids(self) -> set[int]:
        return {r.tid for r in self._records if r.kind == "commit"}

    def recover(
        self, catalog: "Catalog", txn_manager: "TransactionManager",
        metrics=None,
    ) -> dict[str, int]:
        """Replay committed transactions into the (empty) tables of ``catalog``.

        Tables must already exist with their schemas (schema DDL is assumed
        recovered from the catalog's own persistence, as in most systems).
        Returns a table -> replayed-row-count map.  ``metrics`` (defaulting
        to the registry this WAL was built with, if any) receives
        ``wal.replays`` and ``wal.replayed_rows`` counters — a WAL loaded
        from a JSON-lines file has no registry of its own, so recovery
        tooling passes the target database's.
        """
        committed = self.committed_tids()
        replayed: dict[str, int] = {}
        # Replay in LSN order so row ids inside each table line up with the
        # original execution and delete records resolve correctly.
        row_maps: dict[str, dict[int, int]] = {}
        per_table_next: dict[str, int] = {}
        for record in self._records:
            if record.kind not in ("insert", "delete") or record.tid not in committed:
                if record.kind == "insert" and record.table is not None:
                    # Uncommitted inserts still consumed a row id originally.
                    per_table_next[record.table] = per_table_next.get(record.table, 0) + 1
                continue
            assert record.table is not None
            table = catalog.table(record.table)
            if record.kind == "insert":
                if record.row_id is not None:
                    original_id = record.row_id
                    per_table_next[record.table] = original_id + 1
                else:
                    original_id = per_table_next.get(record.table, 0)
                    per_table_next[record.table] = original_id + 1
                txn = txn_manager.begin()
                try:
                    new_id = table.insert(txn, record.payload)  # type: ignore[arg-type]
                finally:
                    txn_manager.commit(txn)
                row_maps.setdefault(record.table, {})[original_id] = new_id
                replayed[record.table] = replayed.get(record.table, 0) + 1
            else:
                mapped = row_maps.get(record.table, {}).get(record.payload)  # type: ignore[arg-type]
                if mapped is None:
                    raise TransactionError(
                        f"recovery: delete of unknown row {record.payload} in {record.table!r}"
                    )
                txn = txn_manager.begin()
                try:
                    table.delete_row(txn, mapped)
                finally:
                    txn_manager.commit(txn)
        registry = metrics if metrics is not None else self._metrics
        if registry is not None:
            registry.counter("wal.replays").inc()
            registry.counter("wal.replayed_rows").inc(sum(replayed.values()))
        return replayed

    # -- (de)serialization ---------------------------------------------------

    def dump_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record_to_json(record)) + "\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "WriteAheadLog":
        """Load a JSON-lines dump, hardened against partial writes.

        A malformed or truncated *final* line is the signature of a crash
        mid-dump: it is skipped with a warning, consistent with the disk
        WAL's torn-tail truncation.  A malformed line anywhere else means
        real corruption and raises a :class:`TransactionError` instead of
        leaking ``KeyError`` / ``json.JSONDecodeError``.
        """
        wal = cls()
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = record_from_json(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if index == len(lines) - 1:
                    warnings.warn(
                        f"WAL {path}: skipping torn final line {index + 1} "
                        f"({type(exc).__name__})",
                        stacklevel=2,
                    )
                    break
                raise TransactionError(
                    f"malformed WAL record at {path}:{index + 1}: {exc}"
                ) from exc
            wal._records.append(record)
            wal._next_lsn = record.lsn + 1
        return wal


def _encode_value(value: object) -> object:
    if isinstance(value, decimal.Decimal):
        return {"$dec": str(value)}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict):
        if "$dec" in value:
            return decimal.Decimal(value["$dec"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
    return value


def record_to_json(record: LogRecord) -> dict:
    payload: object = record.payload
    if isinstance(payload, tuple):
        payload = [_encode_value(v) for v in payload]
    out = {
        "lsn": record.lsn,
        "tid": record.tid,
        "kind": record.kind,
        "table": record.table,
        "payload": payload,
    }
    if record.row_id is not None:
        out["row_id"] = record.row_id
    return out


def record_from_json(data: dict) -> LogRecord:
    payload = data["payload"]
    if isinstance(payload, list):
        payload = tuple(_decode_value(v) for v in payload)
    return LogRecord(
        data["lsn"], data["tid"], data["kind"], data["table"], payload,
        data.get("row_id"),
    )


# Backwards-compatible aliases (pre-disk-WAL internal names).
_record_to_json = record_to_json
_record_from_json = record_from_json

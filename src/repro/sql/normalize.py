"""SQL shape normalization: literal-erased query fingerprints.

A query *shape* is the SQL text with every literal replaced by ``?`` and
whitespace/case canonicalized, so ``select * from t where id = 7`` and
``SELECT * FROM t WHERE id=42`` normalize identically.  The shape hash is
the stable identity ``sys.query_log`` and the workload replay harness use
to group executions of "the same query" across parameter values — the
grouping a plan cache (ROADMAP item 5) would key on, and the unit the
replay report aggregates latencies over.
"""

from __future__ import annotations

import hashlib

from .lexer import Token, TokenType, tokenize


def normalize_sql(sql: str) -> str:
    """Canonical literal-erased form of ``sql``.

    Keywords upper-case, identifiers lower-case, every NUMBER/STRING
    literal replaced by ``?``, single spaces between tokens (none before
    closing punctuation or after opening parens).  Unparseable text is
    returned stripped — a fingerprint must never raise.

    The fallback deliberately does *not* collapse whitespace: text the
    lexer rejects (e.g. an unterminated string) may differ from another
    statement only inside a string region, and whitespace-collapsing
    would merge those distinct statements into one shape.
    """
    try:
        tokens = tokenize(sql)
    except Exception:
        return sql.strip()
    return _render_tokens(tokens)


def extract_shape(sql: str) -> tuple[str, list[object], list[Token]]:
    """One-pass shape extraction for the plan cache.

    Returns ``(normalized, literal_values, tokens)``: the canonical shape
    string (identical to :func:`normalize_sql`), the NUMBER/STRING literal
    values in lexical order (slot order — matching the parser's
    ``parameterize=True`` numbering), and the token list so the caller can
    parse without re-lexing.  Raises whatever :func:`tokenize` raises.
    """
    tokens = tokenize(sql)
    values = [
        token.value for token in tokens
        if token.type in (TokenType.NUMBER, TokenType.STRING)
    ]
    return _render_tokens(tokens), values, tokens


def _render_tokens(tokens: list[Token]) -> str:
    parts: list[str] = []
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        parts.append(_render(token))
    out: list[str] = []
    for index, part in enumerate(parts):
        if index and _needs_space(parts[index - 1], part):
            out.append(" ")
        out.append(part)
    return "".join(out)


def shape_hash(sql: str) -> str:
    """A short stable hash of :func:`normalize_sql`."""
    normalized = normalize_sql(sql)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:12]


def _render(token: Token) -> str:
    if token.type in (TokenType.NUMBER, TokenType.STRING):
        return "?"
    if token.type is TokenType.KEYWORD:
        return token.text.upper()
    if token.type is TokenType.IDENTIFIER:
        return token.text.lower()
    return token.text


def _needs_space(previous: str, current: str) -> bool:
    if previous in ("(", "."):
        return False
    if current in (")", ",", ".", ";", "("):
        # keep `f(x)` tight but separate `FROM (`-style keyword-paren pairs
        return current == "(" and previous[-1:].isalpha() and previous.isupper()
    return True

"""SQL front end: lexer, parse-tree AST, and recursive-descent parser.

The dialect is a pragmatic subset of ANSI SQL plus the HANA-style extensions
the paper discusses:

- join cardinality specifications (``LEFT OUTER MANY TO ONE JOIN``), §7.3
- ``CASE JOIN`` to declare augmentation-self-join intent, §6.3
- ``ALLOW_PRECISION_LOSS(...)`` wrapper for aggregates, §7.1
- ``WITH EXPRESSION MACROS (expr AS name, ...)`` on ``CREATE VIEW`` and
  ``EXPRESSION_MACRO(name)`` references, §7.2
"""

from .ast import (  # noqa: F401
    Statement,
    Query,
    Select,
    SetOp,
    TableRef,
    DerivedTable,
    JoinClause,
    JoinKind,
    CardinalityBound,
    JoinCardinality,
    SelectItem,
    OrderItem,
    CreateTable,
    CreateView,
    DropStatement,
    Insert,
    Update,
    Delete,
    ColumnDef,
    TableConstraint,
    Expr,
    ColumnName,
    Star,
    Literal,
    BinaryOp,
    UnaryOp,
    FunctionCall,
    CaseWhen,
    CastExpr,
    InList,
    BetweenExpr,
    IsNull,
    ExprMacroDef,
)
from .lexer import Lexer, Token, TokenType  # noqa: F401
from .parser import Parser, parse_sql, parse_statement, parse_expression  # noqa: F401

"""SQL tokenizer.

Produces a flat list of :class:`Token` objects.  Keywords are recognized
case-insensitively and reported with a dedicated token type so the parser can
match on them directly; identifiers preserve their original text but compare
case-insensitively downstream (the catalog lower-cases names).
"""

from __future__ import annotations

import decimal
from dataclasses import dataclass
from enum import Enum

from ..errors import SqlSyntaxError


class TokenType(Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
    "OUTER", "CROSS", "ON", "AS", "UNION", "ALL", "AND", "OR", "NOT", "NULL",
    "IS", "IN", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END",
    "CAST", "CREATE", "REPLACE", "VIEW", "TABLE", "DROP", "INSERT", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "PRIMARY", "UNIQUE", "FOREIGN",
    "REFERENCES", "CONSTRAINT", "WITH", "EXPRESSION", "MACROS", "MANY", "ONE",
    "EXACT", "TO", "TRUE", "FALSE", "EXISTS", "IF", "DEFAULT",
}

_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!=", "||"}
_ONE_CHAR_OPERATORS = {"=", "<", ">", "+", "-", "*", "/", "%"}
_PUNCT = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    value: object = None
    line: int = 0
    column: int = 0

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r})"


class Lexer:
    """Single-pass tokenizer over a SQL string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenType.EOF, "", line=self._line, column=self._col))
                return tokens
            tokens.append(self._next_token())

    # -- internals -----------------------------------------------------

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, line=self._line, column=self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos:self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return chunk

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text) and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self._pos >= len(self._text):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, col = self._line, self._col
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, col)
        if ch == '"':
            return self._lex_quoted_identifier(line, col)
        if ch == "'":
            return self._lex_string(line, col)
        two = self._text[self._pos:self._pos + 2]
        if two in _TWO_CHAR_OPERATORS:
            self._advance(2)
            return Token(TokenType.OPERATOR, two, line=line, column=col)
        if ch in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, ch, line=line, column=col)
        if ch in _PUNCT:
            self._advance()
            return Token(TokenType.PUNCT, ch, line=line, column=col)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        saw_dot = False
        saw_exp = False
        while self._pos < len(self._text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp:
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp and self._pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    saw_exp = True
                    self._advance(2 if nxt in "+-" else 1)
                else:
                    break
            else:
                break
        text = self._text[start:self._pos]
        if saw_exp:
            value: object = float(text)
        elif saw_dot:
            value = decimal.Decimal(text)
        else:
            value = int(text)
        return Token(TokenType.NUMBER, text, value=value, line=line, column=col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._text[start:self._pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line=line, column=col)
        return Token(TokenType.IDENTIFIER, text, line=line, column=col)

    def _lex_quoted_identifier(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._pos < len(self._text) and self._peek() != '"':
            self._advance()
        if self._pos >= len(self._text):
            raise self._error("unterminated quoted identifier")
        text = self._text[start:self._pos]
        self._advance()  # closing quote
        return Token(TokenType.IDENTIFIER, text, line=line, column=col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                parts.append(ch)
                self._advance()
        value = "".join(parts)
        return Token(TokenType.STRING, value, value=value, line=line, column=col)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return Lexer(text).tokenize()

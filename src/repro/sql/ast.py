"""Parse-tree (AST) node definitions.

These nodes are a faithful syntactic representation; no name resolution or
type checking happens here.  The binder (:mod:`repro.algebra.binder`) turns
them into the logical algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..datatypes import DataType


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for syntactic expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnName(Expr):
    """A possibly-qualified column reference like ``o.o_orderkey``."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list (or ``COUNT(*)``)."""

    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL.

    ``param_slot`` is set (to the literal's lexical index among the
    statement's NUMBER/STRING tokens) only when the statement was parsed
    with ``parameterize=True`` — the plan cache uses it to bind the
    literal as an opaque :class:`repro.algebra.expr.Param`.  It is
    excluded from equality so tagged and untagged parses compare equal.
    """

    value: object
    param_slot: int | None = field(default=None, compare=False)

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator: arithmetic, comparison, AND/OR, LIKE, ``||``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: NOT, unary minus."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Function or aggregate call.

    ``distinct`` marks ``COUNT(DISTINCT x)``-style calls.  Aggregates are not
    distinguished syntactically; the binder decides based on the function
    name.  ``ALLOW_PRECISION_LOSS`` and ``EXPRESSION_MACRO`` arrive as plain
    calls, too.
    """

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE [WHEN cond THEN value]... [ELSE value] END`` (searched form)."""

    branches: tuple[tuple[Expr, Expr], ...]
    else_value: Expr | None = None

    def __str__(self) -> str:
        body = " ".join(f"WHEN {c} THEN {v}" for c, v in self.branches)
        tail = f" ELSE {self.else_value}" if self.else_value is not None else ""
        return f"CASE {body}{tail} END"


@dataclass(frozen=True)
class CastExpr(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    target: DataType

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.target})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal/scalar items."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.items)
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {word} ({inner}))"


@dataclass(frozen=True)
class BetweenExpr(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {word} {self.low} AND {self.high})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def __str__(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {word})"


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """``[NOT] EXISTS (subquery)`` — allowed as a WHERE conjunct."""

    query: "Query"
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{word}(<subquery>)"


@dataclass(frozen=True)
class ScalarQuery(Expr):
    """``(subquery)`` in expression position: must yield one row, one column
    (zero rows evaluate to NULL)."""

    query: "Query"

    def __str__(self) -> str:
        return "(<scalar subquery>)"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (subquery)`` — allowed as a WHERE conjunct."""

    operand: Expr
    query: "Query"
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {word} (<subquery>))"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class Statement:
    """Base class for top-level statements."""

    __slots__ = ()


class Query(Statement):
    """Base class for things usable as a query body (Select or SetOp)."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


class JoinKind(Enum):
    INNER = "INNER"
    LEFT_OUTER = "LEFT OUTER"
    CROSS = "CROSS"
    # HANA-style declared ASJ intent (paper §6.3).  Semantically a LEFT OUTER
    # join; the flag instructs the optimizer to preserve the augmenter
    # subgraph and attempt ASJ elimination aggressively.
    CASE_JOIN = "CASE JOIN"


class CardinalityBound(Enum):
    """One side of a declared join cardinality (paper §7.3)."""

    EXACT_ONE = "EXACT ONE"  # 1..1
    ONE = "ONE"              # 0..1
    MANY = "MANY"            # 0..N


@dataclass(frozen=True)
class JoinCardinality:
    """Declared cardinality, e.g. ``MANY TO ONE`` = left MANY, right ONE."""

    left: CardinalityBound
    right: CardinalityBound

    def __str__(self) -> str:
        return f"{self.left.value} TO {self.right.value}"


class TableExpr:
    """Base class for FROM-clause items."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef(TableExpr):
    """A base table or view reference with an optional alias."""

    name: str
    alias: str | None = None


@dataclass(frozen=True)
class DerivedTable(TableExpr):
    """A parenthesized subquery in FROM, with a mandatory alias."""

    query: "Query"
    alias: str


@dataclass(frozen=True)
class JoinClause(TableExpr):
    """A join between two table expressions."""

    kind: JoinKind
    left: TableExpr
    right: TableExpr
    condition: Expr | None = None
    cardinality: JoinCardinality | None = None


@dataclass(frozen=True)
class Select(Query):
    """A single SELECT block."""

    items: tuple[SelectItem, ...]
    from_clause: TableExpr | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOp(Query):
    """A set operation; only UNION ALL is supported (the paper's subject)."""

    op: str  # "UNION ALL"
    left: Query
    right: Query
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None


# ---------------------------------------------------------------------------
# DDL / DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    """Column definition in CREATE TABLE."""

    name: str
    data_type: DataType
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False


@dataclass(frozen=True)
class TableConstraint:
    """Table-level PRIMARY KEY / UNIQUE constraint."""

    kind: str  # "PRIMARY KEY" | "UNIQUE"
    columns: tuple[str, ...]


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    constraints: tuple[TableConstraint, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class ExprMacroDef:
    """One entry of ``WITH EXPRESSION MACROS (expr AS name, ...)`` (§7.2)."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class CreateView(Statement):
    name: str
    query: Query
    column_names: tuple[str, ...] = ()
    or_replace: bool = False
    macros: tuple[ExprMacroDef, ...] = ()


@dataclass(frozen=True)
class DropStatement(Statement):
    kind: str  # "TABLE" | "VIEW"
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...] = ()
    query: Query | None = None


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...] = ()
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expr | None = None

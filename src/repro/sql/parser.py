"""Recursive-descent SQL parser.

Entry points:

- :func:`parse_sql`        — parse a script into a list of statements
- :func:`parse_statement`  — parse exactly one statement
- :func:`parse_expression` — parse a standalone scalar expression
"""

from __future__ import annotations

from ..datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    DataType,
    decimal_type,
    varchar,
)
from ..errors import SqlSyntaxError
from . import ast
from .lexer import Token, TokenType, tokenize

# Type names are ordinary identifiers to the lexer; the parser resolves them.
_SIMPLE_TYPES: dict[str, DataType] = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": BIGINT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "DATE": DATE,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
}

_COMPARISON_OPS = {"=", "<", ">", "<=", ">=", "<>", "!="}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, text: str, tokens: list[Token] | None = None,
                 parameterize: bool = False):
        self._tokens = tokenize(text) if tokens is None else tokens
        self._pos = 0
        # Slot map for the plan cache: lexical index of each NUMBER/STRING
        # token among the statement's literal tokens.  Only the Database
        # cache-probe path parses with parameterize=True, so view/macro
        # bodies stored at CREATE VIEW time never carry slots.
        self._param_slots: dict[int, int] = {}
        if parameterize:
            slot = 0
            for index, token in enumerate(self._tokens):
                if token.type in (TokenType.NUMBER, TokenType.STRING):
                    self._param_slots[index] = slot
                    slot += 1

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(
            f"{message} (found {token.text!r})", line=token.line, column=token.column
        )

    def _match_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        if not self._peek().is_keyword(name):
            raise self._error(f"expected {name}")
        return self._advance()

    def _match_punct(self, text: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        if not (self._peek().type is TokenType.PUNCT and self._peek().text == text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.text
        raise self._error("expected identifier")

    def _expect_integer(self) -> int:
        token = self._peek()
        if token.type is TokenType.NUMBER and isinstance(token.value, int):
            self._advance()
            return token.value
        raise self._error("expected integer literal")

    def _expect_word_key(self) -> None:
        """KEY is non-reserved (VDM tables use it as a column name); match
        it as the identifier following PRIMARY/FOREIGN."""
        token = self._peek()
        if token.type is TokenType.IDENTIFIER and token.text.upper() == "KEY":
            self._advance()
            return
        raise self._error("expected KEY")

    # -- entry points ----------------------------------------------------

    def parse_script(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self._peek().type is not TokenType.EOF:
            statements.append(self.parse_statement())
            while self._match_punct(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("SELECT") or (token.type is TokenType.PUNCT and token.text == "("):
            return self.parse_query()
        raise self._error("expected a statement")

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> ast.Query:
        """query := select_core (UNION ALL select_core)* [ORDER BY ...] [LIMIT ...]"""
        query: ast.Query = self._parse_select_core()
        while self._peek().is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            right = self._parse_select_core()
            query = ast.SetOp("UNION ALL", query, right)
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        if order_by or limit is not None or offset is not None:
            if isinstance(query, ast.SetOp):
                query = ast.SetOp(query.op, query.left, query.right,
                                  order_by=order_by, limit=limit, offset=offset)
            else:
                assert isinstance(query, ast.Select)
                if query.order_by or query.limit is not None:
                    raise self._error("duplicate ORDER BY / LIMIT")
                query = ast.Select(
                    query.items, query.from_clause, query.where, query.group_by,
                    query.having, order_by, limit, offset, query.distinct,
                )
        return query

    def _parse_select_core(self) -> ast.Query:
        if self._match_punct("("):
            inner = self.parse_query()
            self._expect_punct(")")
            return inner
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        from_clause = None
        if self._match_keyword("FROM"):
            from_clause = self._parse_table_expr()
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            keys = [self._parse_expr()]
            while self._match_punct(","):
                keys.append(self._parse_expr())
            group_by = tuple(keys)
        having = self._parse_expr() if self._match_keyword("HAVING") else None
        return ast.Select(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        # qualified star: ident . *
        if (token.type is TokenType.IDENTIFIER
                and self._peek(1).type is TokenType.PUNCT and self._peek(1).text == "."
                and self._peek(2).type is TokenType.OPERATOR and self._peek(2).text == "*"):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(qualifier=token.text))
        expr = self._parse_expr()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _parse_order_by(self) -> tuple[ast.OrderItem, ...]:
        if not self._peek().is_keyword("ORDER"):
            return ()
        self._advance()
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._match_punct(","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._match_keyword("DESC"):
            ascending = False
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def _parse_limit_offset(self) -> tuple[int | None, int | None]:
        limit = offset = None
        if self._match_keyword("LIMIT"):
            limit = self._expect_integer()
        if self._match_keyword("OFFSET"):
            offset = self._expect_integer()
        return limit, offset

    # -- FROM clause -------------------------------------------------------

    def _parse_table_expr(self) -> ast.TableExpr:
        expr = self._parse_table_primary()
        while True:
            join = self._try_parse_join(expr)
            if join is None:
                return expr
            expr = join

    def _try_parse_join(self, left: ast.TableExpr) -> ast.JoinClause | None:
        token = self._peek()
        kind: ast.JoinKind | None = None
        cardinality: ast.JoinCardinality | None = None
        if token.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            right = self._parse_table_primary()
            return ast.JoinClause(ast.JoinKind.CROSS, left, right)
        if token.is_keyword("CASE") and self._peek(1).is_keyword("JOIN"):
            self._advance()
            self._advance()
            kind = ast.JoinKind.CASE_JOIN
        elif token.is_keyword("INNER"):
            self._advance()
            kind = ast.JoinKind.INNER
            cardinality = self._parse_cardinality_spec()
            self._expect_keyword("JOIN")
        elif token.is_keyword("LEFT"):
            self._advance()
            self._match_keyword("OUTER")
            kind = ast.JoinKind.LEFT_OUTER
            cardinality = self._parse_cardinality_spec()
            self._expect_keyword("JOIN")
        elif token.is_keyword("JOIN"):
            self._advance()
            kind = ast.JoinKind.INNER
        elif token.is_keyword("MANY", "EXACT", "ONE"):
            cardinality = self._parse_cardinality_spec()
            kind = ast.JoinKind.INNER
            self._expect_keyword("JOIN")
        else:
            return None
        right = self._parse_table_primary()
        condition = None
        if self._match_keyword("ON"):
            condition = self._parse_expr()
        elif kind is not ast.JoinKind.CROSS:
            raise self._error("expected ON for join")
        return ast.JoinClause(kind, left, right, condition, cardinality)

    def _parse_cardinality_spec(self) -> ast.JoinCardinality | None:
        """Parse an optional ``MANY TO [EXACT] ONE``-style cardinality (§7.3)."""
        if not self._peek().is_keyword("MANY", "ONE", "EXACT"):
            return None
        left = self._parse_cardinality_bound()
        self._expect_keyword("TO")
        right = self._parse_cardinality_bound()
        return ast.JoinCardinality(left, right)

    def _parse_cardinality_bound(self) -> ast.CardinalityBound:
        if self._match_keyword("MANY"):
            return ast.CardinalityBound.MANY
        if self._match_keyword("EXACT"):
            self._expect_keyword("ONE")
            return ast.CardinalityBound.EXACT_ONE
        self._expect_keyword("ONE")
        return ast.CardinalityBound.ONE

    def _parse_table_primary(self) -> ast.TableExpr:
        if self._match_punct("("):
            # Either a derived table (subquery) or a parenthesized join tree.
            if self._peek().is_keyword("SELECT") or (
                self._peek().type is TokenType.PUNCT and self._peek().text == "("
            ):
                query = self.parse_query()
                self._expect_punct(")")
                alias = self._parse_optional_alias()
                if alias is None:
                    raise self._error("derived table requires an alias")
                return ast.DerivedTable(query, alias)
            inner = self._parse_table_expr()
            self._expect_punct(")")
            return inner
        name = self._parse_table_name()
        alias = self._parse_optional_alias()
        return ast.TableRef(name, alias)

    def _parse_table_name(self) -> str:
        """An identifier with an optional dotted qualifier (`sys.query_log`).

        The dotted pair is one catalog name, not a schema object model —
        the catalog stores the full dotted string.
        """
        name = self._expect_identifier()
        if (
            self._peek().type is TokenType.PUNCT
            and self._peek().text == "."
            and self._peek(1).type is TokenType.IDENTIFIER
        ):
            self._advance()
            name = f"{name}.{self._advance().text}"
        return name

    def _parse_optional_alias(self) -> str | None:
        if self._match_keyword("AS"):
            return self._expect_identifier()
        if self._peek().type is TokenType.IDENTIFIER:
            return self._advance().text
        return None

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._match_keyword("OR"):
            expr = ast.BinaryOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._match_keyword("AND"):
            expr = ast.BinaryOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword("EXISTS"):
            self._advance()
            return self._parse_exists(negated=True)
        if self._match_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_exists(self, negated: bool) -> ast.Expr:
        self._expect_keyword("EXISTS")
        self._expect_punct("(")
        query = self.parse_query()
        self._expect_punct(")")
        return ast.ExistsExpr(query, negated)

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in _COMPARISON_OPS:
            op = self._advance().text
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, expr, self._parse_additive())
        if token.is_keyword("IS"):
            self._advance()
            negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(expr, negated)
        negated = False
        if token.is_keyword("NOT") and self._peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
            token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            if self._peek().is_keyword("SELECT"):
                query = self.parse_query()
                self._expect_punct(")")
                return ast.InSubquery(expr, query, negated)
            items = [self._parse_expr()]
            while self._match_punct(","):
                items.append(self._parse_expr())
            self._expect_punct(")")
            return ast.InList(expr, tuple(items), negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.BetweenExpr(expr, low, high, negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_additive()
            like = ast.BinaryOp("LIKE", expr, pattern)
            return ast.UnaryOp("NOT", like) if negated else like
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("+", "-", "||"):
                op = self._advance().text
                expr = ast.BinaryOp(op, expr, self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("*", "/", "%"):
                op = self._advance().text
                expr = ast.BinaryOp(op, expr, self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        if token.type is TokenType.OPERATOR and token.text == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            slot = self._param_slots.get(self._pos)
            self._advance()
            return ast.Literal(token.value, param_slot=slot)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CAST"):
            self._advance()
            self._expect_punct("(")
            operand = self._parse_expr()
            self._expect_keyword("AS")
            target = self._parse_data_type()
            self._expect_punct(")")
            return ast.CastExpr(operand, target)
        if token.is_keyword("EXISTS"):
            return self._parse_exists(negated=False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.type is TokenType.PUNCT and token.text == "(":
            self._advance()
            if self._peek().is_keyword("SELECT"):
                query = self.parse_query()
                self._expect_punct(")")
                return ast.ScalarQuery(query)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise self._error("expected expression")

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        branches: list[tuple[ast.Expr, ast.Expr]] = []
        while self._match_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            value = self._parse_expr()
            branches.append((cond, value))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        else_value = self._parse_expr() if self._match_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.CaseWhen(tuple(branches), else_value)

    def _parse_identifier_expr(self) -> ast.Expr:
        name = self._expect_identifier()
        if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
            return self._parse_call(name)
        if self._match_punct("."):
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text == "*":
                self._advance()
                return ast.Star(qualifier=name)
            column = self._expect_identifier()
            return ast.ColumnName(column, qualifier=name)
        return ast.ColumnName(name)

    def _parse_call(self, name: str) -> ast.Expr:
        self._expect_punct("(")
        distinct = self._match_keyword("DISTINCT")
        args: list[ast.Expr] = []
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            args.append(ast.Star())
        elif not (token.type is TokenType.PUNCT and token.text == ")"):
            args.append(self._parse_expr())
            while self._match_punct(","):
                args.append(self._parse_expr())
        self._expect_punct(")")
        return ast.FunctionCall(name.upper(), tuple(args), distinct)

    def _parse_data_type(self) -> DataType:
        name = self._expect_identifier().upper()
        if name in _SIMPLE_TYPES:
            return _SIMPLE_TYPES[name]
        if name in ("DECIMAL", "NUMERIC"):
            precision, scale = 15, 2
            if self._match_punct("("):
                precision = self._expect_integer()
                scale = 0
                if self._match_punct(","):
                    scale = self._expect_integer()
                self._expect_punct(")")
            return decimal_type(precision, scale)
        if name in ("VARCHAR", "NVARCHAR", "CHAR"):
            length = None
            if self._match_punct("("):
                length = self._expect_integer()
                self._expect_punct(")")
            return varchar(length)
        raise self._error(f"unknown type {name}")

    # -- DDL / DML -----------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        or_replace = False
        if self._match_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        if self._match_keyword("TABLE"):
            return self._parse_create_table()
        if self._match_keyword("VIEW"):
            return self._parse_create_view(or_replace)
        raise self._error("expected TABLE or VIEW after CREATE")

    def _parse_create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._parse_table_name()
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        constraints: list[ast.TableConstraint] = []
        while True:
            token = self._peek()
            if token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_word_key()
                constraints.append(ast.TableConstraint("PRIMARY KEY", self._parse_name_list()))
            elif token.is_keyword("UNIQUE"):
                self._advance()
                constraints.append(ast.TableConstraint("UNIQUE", self._parse_name_list()))
            else:
                columns.append(self._parse_column_def())
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name, tuple(columns), tuple(constraints), if_not_exists)

    def _parse_name_list(self) -> tuple[str, ...]:
        self._expect_punct("(")
        names = [self._expect_identifier()]
        while self._match_punct(","):
            names.append(self._expect_identifier())
        self._expect_punct(")")
        return tuple(names)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        data_type = self._parse_data_type()
        nullable = True
        primary_key = False
        unique = False
        while True:
            token = self._peek()
            if token.is_keyword("NOT"):
                self._advance()
                self._expect_keyword("NULL")
                nullable = False
            elif token.is_keyword("NULL"):
                self._advance()
            elif token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_word_key()
                primary_key = True
                nullable = False
            elif token.is_keyword("UNIQUE"):
                self._advance()
                unique = True
            else:
                return ast.ColumnDef(name, data_type, nullable, primary_key, unique)

    def _parse_create_view(self, or_replace: bool) -> ast.CreateView:
        name = self._parse_table_name()
        column_names: tuple[str, ...] = ()
        if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
            column_names = self._parse_name_list()
        self._expect_keyword("AS")
        query = self.parse_query()
        macros: list[ast.ExprMacroDef] = []
        if self._match_keyword("WITH"):
            self._expect_keyword("EXPRESSION")
            self._expect_keyword("MACROS")
            self._expect_punct("(")
            macros.append(self._parse_macro_def())
            while self._match_punct(","):
                macros.append(self._parse_macro_def())
            self._expect_punct(")")
        return ast.CreateView(name, query, column_names, or_replace, tuple(macros))

    def _parse_macro_def(self) -> ast.ExprMacroDef:
        expr = self._parse_expr()
        self._expect_keyword("AS")
        name = self._expect_identifier()
        return ast.ExprMacroDef(name, expr)

    def _parse_drop(self) -> ast.DropStatement:
        self._expect_keyword("DROP")
        if self._match_keyword("TABLE"):
            kind = "TABLE"
        elif self._match_keyword("VIEW"):
            kind = "VIEW"
        else:
            raise self._error("expected TABLE or VIEW after DROP")
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._parse_table_name()
        return ast.DropStatement(kind, name, if_exists)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_table_name()
        columns: tuple[str, ...] = ()
        if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
            columns = self._parse_name_list()
        if self._match_keyword("VALUES"):
            rows: list[tuple[ast.Expr, ...]] = []
            rows.append(self._parse_value_row())
            while self._match_punct(","):
                rows.append(self._parse_value_row())
            return ast.Insert(table, columns, tuple(rows))
        query = self.parse_query()
        return ast.Insert(table, columns, query=query)

    def _parse_value_row(self) -> tuple[ast.Expr, ...]:
        self._expect_punct("(")
        values = [self._parse_expr()]
        while self._match_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return tuple(values)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._parse_table_name()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._match_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        name = self._expect_identifier()
        token = self._peek()
        if not (token.type is TokenType.OPERATOR and token.text == "="):
            raise self._error("expected = in assignment")
        self._advance()
        return name, self._parse_expr()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_table_name()
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        return ast.Delete(table, where)


def parse_sql(text: str) -> list[ast.Statement]:
    """Parse a semicolon-separated SQL script."""
    return Parser(text).parse_script()


def parse_statement(text: str, tokens: list[Token] | None = None,
                    parameterize: bool = False) -> ast.Statement:
    """Parse exactly one SQL statement; trailing tokens are an error.

    ``tokens`` reuses a pre-lexed token list (the plan cache tokenizes
    once for shape extraction and parse).  ``parameterize`` tags every
    NUMBER/STRING literal with its lexical slot for generic-plan binding.
    """
    parser = Parser(text, tokens=tokens, parameterize=parameterize)
    statement = parser.parse_statement()
    while parser._match_punct(";"):
        pass
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return statement


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone scalar expression (used by the VDM DSL and tests)."""
    parser = Parser(text)
    expr = parser._parse_expr()
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return expr

"""Schema metadata objects stored in the catalog.

All names are stored lower-cased; SQL identifiers are case-insensitive in
this dialect (quoted identifiers preserve case in the AST but fold here,
which is sufficient for the reproduced workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datatypes import DataType
from ..errors import CatalogError


@dataclass(frozen=True)
class ColumnSchema:
    """One column of a base table."""

    name: str
    data_type: DataType
    nullable: bool = True


@dataclass(frozen=True)
class UniqueConstraint:
    """A PRIMARY KEY or UNIQUE constraint over one or more columns."""

    columns: tuple[str, ...]
    is_primary: bool = False


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``columns`` reference ``ref_table(ref_columns)``.

    The paper notes FKs are rare in the SAP ecosystem (AJ 1a); they are
    supported so that the AJ 1a derivation path can be exercised.
    """

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass
class TableSchema:
    """Metadata for a base table."""

    name: str
    columns: list[ColumnSchema]
    unique_constraints: list[UniqueConstraint] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.columns = [
            ColumnSchema(c.name.lower(), c.data_type, c.nullable) for c in self.columns
        ]
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise CatalogError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(column.name)
        self.unique_constraints = [
            UniqueConstraint(tuple(c.lower() for c in u.columns), u.is_primary)
            for u in self.unique_constraints
        ]
        for constraint in self.unique_constraints:
            for col in constraint.columns:
                if col not in seen:
                    raise CatalogError(
                        f"constraint references unknown column {col!r} in {self.name!r}"
                    )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key(self) -> tuple[str, ...] | None:
        for constraint in self.unique_constraints:
            if constraint.is_primary:
                return constraint.columns
        return None

    def column(self, name: str) -> ColumnSchema:
        lowered = name.lower()
        for col in self.columns:
            if col.name == lowered:
                return col
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, col in enumerate(self.columns):
            if col.name == lowered:
                return index
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name == lowered for c in self.columns)

    def unique_column_sets(self) -> list[frozenset[str]]:
        """All declared unique column sets (PK included)."""
        return [frozenset(u.columns) for u in self.unique_constraints]


@dataclass
class ViewSchema:
    """Metadata for a SQL view.

    ``query`` is the parsed AST of the defining query (views are always
    inlined at bind time — the paper's VDM relies on the optimizer
    simplifying unfolded views, so there is no view materialization in the
    default path).  ``macros`` holds §7.2 expression macros by name.
    ``sql`` preserves the original text for introspection.
    """

    name: str
    query: object  # ast.Query; typed loosely to avoid an import cycle
    column_names: tuple[str, ...] = ()
    macros: dict[str, object] = field(default_factory=dict)  # name -> ast.Expr
    sql: str = ""

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.column_names = tuple(c.lower() for c in self.column_names)
        self.macros = {k.lower(): v for k, v in self.macros.items()}

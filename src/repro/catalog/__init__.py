"""Catalog: schema metadata, constraint bookkeeping, views, and macros."""

from .schema import (  # noqa: F401
    ColumnSchema,
    ForeignKey,
    TableSchema,
    ViewSchema,
    UniqueConstraint,
)
from .catalog import Catalog  # noqa: F401
from .systables import SYS_PREFIX, SysTable  # noqa: F401

"""Virtual system tables: read-only views over live engine state.

A :class:`SysTable` is catalog-registered under the reserved ``sys.``
namespace and duck-types just enough of
:class:`repro.storage.table.ColumnTable` for the planner and the streaming
executor to treat it like any user table: it binds to a ``Scan``, feeds
the cost model row/distinct estimates, and streams through
``read_column_batches`` in ``batch_size`` chunks.  Rows are produced by a
``rows_fn`` closure at *open* time — each scan sees one consistent
materialization of the underlying ring buffer / registry, regardless of
how many batches it is streamed in.

Storage-only machinery (MVCC visibility, zone maps, delta merge, the WAL)
does not apply: ``is_virtual`` marks the table so the scan operator skips
block pruning, and ``read_only`` makes DML against it fail cleanly.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..errors import ExecutionError
from .schema import TableSchema

SYS_PREFIX = "sys."


class SysTable:
    """One virtual table over engine state.

    ``rows_fn`` returns the current rows as sequences in schema column
    order; it is invoked once per scan open.
    """

    is_virtual = True
    read_only = True

    def __init__(self, schema: TableSchema, rows_fn: Callable[[], list[Sequence[object]]]):
        if not schema.name.startswith(SYS_PREFIX):
            raise ValueError(f"system table {schema.name!r} must live under {SYS_PREFIX!r}")
        self.schema = schema
        self._rows_fn = rows_fn
        self._positions = {c.name: i for i, c in enumerate(schema.columns)}

    def __len__(self) -> int:
        return len(self._rows_fn())

    def rows(self) -> list[Sequence[object]]:
        """The current contents (test/debug convenience)."""
        return list(self._rows_fn())

    # -- the scan surface (mirrors ColumnTable) --------------------------------

    def read_column_batches(
        self,
        txn,
        names: Sequence[str],
        batch_size: int,
        row_ids=None,
        vectorized: bool = False,
    ) -> Iterator[tuple[list[list[object]], int]]:
        # ``vectorized`` is accepted for scan-surface parity; system tables
        # materialize row tuples on demand, so there is no coded form to keep.
        rows = self._rows_fn()
        if row_ids is not None:
            rows = [rows[i] for i in row_ids]
        positions = [self._positions[name] for name in names]
        total = len(rows)
        batch_size = max(1, batch_size)
        for start in range(0, total, batch_size):
            batch = rows[start:start + batch_size]
            columns = [[row[p] for row in batch] for p in positions]
            yield columns, len(batch)

    def visible_row_ids(self, txn) -> range:
        return range(len(self._rows_fn()))

    # -- cost-model hooks -------------------------------------------------------

    def estimated_row_count(self) -> int:
        return len(self._rows_fn())

    def estimated_distinct(self, column: str) -> int:
        # Virtual contents churn per query; a row-count-bounded guess keeps
        # the cost model finite without materializing the buffer twice.
        return max(1, len(self._rows_fn()))

    # -- write surface: always refused ------------------------------------------

    def _refuse(self, operation: str):
        raise ExecutionError(
            f"{self.schema.name} is a read-only system table ({operation} refused)"
        )

    def insert(self, *args, **kwargs):
        self._refuse("INSERT")

    def update_row(self, *args, **kwargs):
        self._refuse("UPDATE")

    def delete_row(self, *args, **kwargs):
        self._refuse("DELETE")

    def bulk_load(self, *args, **kwargs):
        self._refuse("bulk load")

    def merge_delta(self) -> None:
        pass

"""The catalog: name -> table/view resolution and DDL bookkeeping."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

from ..errors import CatalogError
from .schema import TableSchema, ViewSchema
from .systables import SYS_PREFIX, SysTable

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.table import ColumnTable


class Catalog:
    """Holds all tables and views of one database instance.

    Tables are stored together with their storage handle
    (:class:`repro.storage.table.ColumnTable`); views are stored as parsed
    ASTs and inlined at bind time.  Virtual system tables
    (:class:`.systables.SysTable`) live in a separate ``sys.`` namespace:
    they resolve for reads like any table, but stay invisible to
    :meth:`tables` so checkpoints, recovery, and delta merges never touch
    them, and the prefix is reserved against user DDL.

    All mutation paths take one RLock, and the iteration surfaces
    (:meth:`tables` / :meth:`views` / :meth:`system_tables`) return
    snapshot copies rather than live dict iterators: concurrent DDL from
    one session must not blow up a checkpoint, merge, or scan walking the
    catalog from another ("dict changed size during iteration").  Lookups
    stay lock-free — a single dict read is atomic under the GIL.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tables: dict[str, "ColumnTable"] = {}
        self._views: dict[str, ViewSchema] = {}
        self._systables: dict[str, SysTable] = {}
        #: Monotonic DDL generation, bumped on every create/drop of a table
        #: or view.  Cached plans fingerprint this and self-invalidate when
        #: the catalog they were bound against has changed.
        self.version = 0

    # -- tables ---------------------------------------------------------

    def create_table(self, table: "ColumnTable", if_not_exists: bool = False) -> None:
        name = table.schema.name
        self._reject_reserved(name)
        with self._lock:
            if name in self._tables or name in self._views:
                if if_not_exists:
                    return
                raise CatalogError(f"object {name!r} already exists")
            self._tables[name] = table
            self.version += 1

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        lowered = name.lower()
        if lowered in self._systables:
            raise CatalogError(f"system table {name!r} cannot be dropped")
        with self._lock:
            if lowered not in self._tables:
                if if_exists:
                    return
                raise CatalogError(f"no table {name!r}")
            del self._tables[lowered]
            self.version += 1

    def table(self, name: str) -> "ColumnTable":
        lowered = name.lower()
        try:
            return self._tables[lowered]
        except KeyError:
            pass
        try:
            return self._systables[lowered]  # type: ignore[return-value]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return lowered in self._tables or lowered in self._systables

    def table_schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    def tables(self) -> Iterator["ColumnTable"]:
        """User tables only — durability and maintenance iterate this, so
        virtual system tables are deliberately excluded."""
        with self._lock:
            return iter(list(self._tables.values()))

    # -- system tables -----------------------------------------------------

    def register_system_table(self, table: SysTable) -> None:
        name = table.schema.name
        if not name.startswith(SYS_PREFIX):
            raise CatalogError(f"system table {name!r} must live under {SYS_PREFIX!r}")
        with self._lock:
            self._systables[name] = table

    def system_tables(self) -> Iterator[SysTable]:
        with self._lock:
            return iter(list(self._systables.values()))

    def _reject_reserved(self, name: str) -> None:
        if name.startswith(SYS_PREFIX):
            raise CatalogError(
                f"the {SYS_PREFIX!r} namespace is reserved for system tables"
            )

    # -- views ------------------------------------------------------------

    def create_view(self, view: ViewSchema, or_replace: bool = False) -> None:
        self._reject_reserved(view.name)
        with self._lock:
            if view.name in self._tables:
                raise CatalogError(f"table {view.name!r} already exists")
            if view.name in self._views and not or_replace:
                raise CatalogError(f"view {view.name!r} already exists")
            self._views[view.name] = view
            self.version += 1

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        lowered = name.lower()
        with self._lock:
            if lowered not in self._views:
                if if_exists:
                    return
                raise CatalogError(f"no view {name!r}")
            del self._views[lowered]
            self.version += 1

    def view(self, name: str) -> ViewSchema:
        lowered = name.lower()
        try:
            return self._views[lowered]
        except KeyError:
            raise CatalogError(f"no view {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def views(self) -> Iterator[ViewSchema]:
        with self._lock:
            return iter(list(self._views.values()))

    def resolve(self, name: str) -> "ColumnTable | ViewSchema":
        """Resolve ``name`` to a table or a view, tables first."""
        lowered = name.lower()
        if lowered in self._tables:
            return self._tables[lowered]
        if lowered in self._systables:
            return self._systables[lowered]  # type: ignore[return-value]
        if lowered in self._views:
            return self._views[lowered]
        raise CatalogError(f"no table or view named {name!r}")

"""The catalog: name -> table/view resolution and DDL bookkeeping."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import CatalogError
from .schema import TableSchema, ViewSchema

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.table import ColumnTable


class Catalog:
    """Holds all tables and views of one database instance.

    Tables are stored together with their storage handle
    (:class:`repro.storage.table.ColumnTable`); views are stored as parsed
    ASTs and inlined at bind time.
    """

    def __init__(self) -> None:
        self._tables: dict[str, "ColumnTable"] = {}
        self._views: dict[str, ViewSchema] = {}

    # -- tables ---------------------------------------------------------

    def create_table(self, table: "ColumnTable", if_not_exists: bool = False) -> None:
        name = table.schema.name
        if name in self._tables or name in self._views:
            if if_not_exists:
                return
            raise CatalogError(f"object {name!r} already exists")
        self._tables[name] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        lowered = name.lower()
        if lowered not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table {name!r}")
        del self._tables[lowered]

    def table(self, name: str) -> "ColumnTable":
        lowered = name.lower()
        try:
            return self._tables[lowered]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    def tables(self) -> Iterator["ColumnTable"]:
        return iter(self._tables.values())

    # -- views ------------------------------------------------------------

    def create_view(self, view: ViewSchema, or_replace: bool = False) -> None:
        if view.name in self._tables:
            raise CatalogError(f"table {view.name!r} already exists")
        if view.name in self._views and not or_replace:
            raise CatalogError(f"view {view.name!r} already exists")
        self._views[view.name] = view

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        lowered = name.lower()
        if lowered not in self._views:
            if if_exists:
                return
            raise CatalogError(f"no view {name!r}")
        del self._views[lowered]

    def view(self, name: str) -> ViewSchema:
        lowered = name.lower()
        try:
            return self._views[lowered]
        except KeyError:
            raise CatalogError(f"no view {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def views(self) -> Iterator[ViewSchema]:
        return iter(self._views.values())

    def resolve(self, name: str) -> "ColumnTable | ViewSchema":
        """Resolve ``name`` to a table or a view, tables first."""
        lowered = name.lower()
        if lowered in self._tables:
            return self._tables[lowered]
        if lowered in self._views:
            return self._views[lowered]
        raise CatalogError(f"no table or view named {name!r}")

"""CDS-style data modeling: entities, elements, associations.

The paper (§2.3): *"VDM views are modeled in CDS and deployed as SQL views
into the database. ... VDM views are enriched with semantical information
and connected to other VDM views by CDS associations.  These associations
can be used in a CDS path notation to add fields from the associated view —
an easy and convenient way to join a view and project columns from it."*

An :class:`Entity` describes a database table with business-named elements;
an :class:`Association` declares a typed, cardinality-annotated relationship
that the compiler turns into a (many-to-one left outer) augmentation join
whenever a path expression uses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from ..datatypes import DataType
from ..errors import CatalogError


class Cardinality(Enum):
    """Association cardinality as declared in CDS (paper §7.3 semantics)."""

    MANY_TO_ONE = "many to one"            # 0..1 target rows per source row
    MANY_TO_EXACT_ONE = "many to exact one"  # exactly 1 target row
    ONE_TO_MANY = "one to many"
    ONE_TO_ONE = "one to one"

    @property
    def is_to_one(self) -> bool:
        return self in (
            Cardinality.MANY_TO_ONE,
            Cardinality.MANY_TO_EXACT_ONE,
            Cardinality.ONE_TO_ONE,
        )


@dataclass(frozen=True)
class Element:
    """One element (column) of an entity."""

    name: str
    data_type: DataType
    key: bool = False
    not_null: bool = False
    label: str | None = None  # business-facing description


@dataclass(frozen=True)
class Association:
    """A named link to another entity, usable in path expressions."""

    name: str
    target: str  # target entity name
    on: tuple[tuple[str, str], ...]  # (local element, target element) pairs
    cardinality: Cardinality = Cardinality.MANY_TO_ONE


@dataclass
class Entity:
    """A CDS entity: a table definition plus associations and labels."""

    name: str
    elements: list[Element]
    associations: list[Association] = field(default_factory=list)
    unique: list[tuple[str, ...]] = field(default_factory=list)  # extra unique sets

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        names = [e.name.lower() for e in self.elements]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate element names in entity {self.name!r}")
        by_name = set(names)
        for assoc in self.associations:
            for local, _ in assoc.on:
                if local.lower() not in by_name:
                    raise CatalogError(
                        f"association {assoc.name!r} uses unknown element {local!r}"
                    )

    @property
    def key_elements(self) -> tuple[str, ...]:
        return tuple(e.name.lower() for e in self.elements if e.key)

    def association(self, name: str) -> Association:
        lowered = name.lower()
        for assoc in self.associations:
            if assoc.name.lower() == lowered:
                return assoc
        raise CatalogError(f"no association {name!r} on entity {self.name!r}")

    def element(self, name: str) -> Element:
        lowered = name.lower()
        for element in self.elements:
            if element.name.lower() == lowered:
                return element
        raise CatalogError(f"no element {name!r} on entity {self.name!r}")

    def to_table_schema(self) -> TableSchema:
        """The backing table schema for this entity."""
        columns = [
            ColumnSchema(e.name, e.data_type, nullable=not (e.key or e.not_null))
            for e in self.elements
        ]
        constraints = []
        if self.key_elements:
            constraints.append(UniqueConstraint(self.key_elements, is_primary=True))
        for unique_set in self.unique:
            constraints.append(UniqueConstraint(tuple(c.lower() for c in unique_set)))
        return TableSchema(self.name, columns, constraints)


@dataclass(frozen=True)
class PathField:
    """A field exposed by a view: either a local element or a one-step
    association path (``association.element``), optionally aliased."""

    path: str
    alias: str | None = None

    @property
    def is_association_path(self) -> bool:
        return "." in self.path

    def parts(self) -> tuple[str, str | None]:
        if self.is_association_path:
            association, element = self.path.split(".", 1)
            return association, element
        return self.path, None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias.lower()
        return self.path.replace(".", "_").lower()

"""The layered VDM view registry (paper §2.3, Fig. 2).

- **Basic** views sit close to the tables and add business terminology;
- **Composite** views combine basic views for a functional purpose;
- **Consumption** views serve one UI/API scenario.

The registry tracks layer, dependencies, and nesting depth (the paper notes
a maximum nesting depth of 24 in the real VDM) and deploys views as SQL
views into the database — always inlined at query time, relying on the
optimizer to simplify the unfolded stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..database import Database
from ..errors import CatalogError


class ViewLayer(Enum):
    BASIC = "basic"
    COMPOSITE = "composite"
    CONSUMPTION = "consumption"


@dataclass
class VdmView:
    """One registered VDM view."""

    name: str
    layer: ViewLayer
    sql: str
    depends_on: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.depends_on = tuple(d.lower() for d in self.depends_on)


class VirtualDataModel:
    """Registry + deployment manager for a database's VDM views."""

    def __init__(self, db: Database):
        self.db = db
        self._views: dict[str, VdmView] = {}
        self._m_deployed = db.metrics.counter("vdm.views_deployed")

    def deploy(self, view: VdmView) -> VdmView:
        """Validate layering, register, and create the SQL view."""
        for dependency in view.depends_on:
            if dependency not in self._views and not self.db.catalog.has_table(dependency):
                raise CatalogError(
                    f"view {view.name!r} depends on unknown object {dependency!r}"
                )
        dependencies = [self._views[d] for d in view.depends_on if d in self._views]
        if view.layer is ViewLayer.BASIC:
            bad = [d.name for d in dependencies if d.layer is not ViewLayer.BASIC]
            if bad:
                raise CatalogError(
                    f"basic view {view.name!r} may not depend on higher layers: {bad}"
                )
        if view.layer is ViewLayer.COMPOSITE:
            bad = [d.name for d in dependencies if d.layer is ViewLayer.CONSUMPTION]
            if bad:
                raise CatalogError(
                    f"composite view {view.name!r} may not depend on consumption views: {bad}"
                )
        self.db.execute(view.sql)
        self._views[view.name] = view
        self._m_deployed.inc()
        return view

    def view(self, name: str) -> VdmView:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no VDM view {name!r}") from None

    def views(self, layer: ViewLayer | None = None) -> list[VdmView]:
        return [v for v in self._views.values() if layer is None or v.layer is layer]

    def nesting_depth(self, name: str) -> int:
        """Depth of the view stack under ``name`` (a table has depth 0)."""
        lowered = name.lower()
        if lowered not in self._views:
            return 0
        view = self._views[lowered]
        if not view.depends_on:
            return 1
        return 1 + max(self.nesting_depth(d) for d in view.depends_on)

    def statistics(self) -> dict[str, int]:
        """Registry-level statistics mirroring the paper's §2.3 numbers."""
        per_layer = {layer: 0 for layer in ViewLayer}
        for view in self._views.values():
            per_layer[view.layer] += 1
        max_depth = max((self.nesting_depth(n) for n in self._views), default=0)
        return {
            "basic": per_layer[ViewLayer.BASIC],
            "composite": per_layer[ViewLayer.COMPOSITE],
            "consumption": per_layer[ViewLayer.CONSUMPTION],
            "total": len(self._views),
            "max_nesting_depth": max_depth,
        }

"""JournalEntryItemBrowser analog (paper §3, Figs. 3-4).

Builds a synthetic S/4-style financial model around an ACDOCA-like
universal journal table and deploys a VDM stack whose *unoptimized* plan for
``select * from journalentryitembrowser`` matches the structural statistics
the paper reports for Fig. 3:

- 47 table instances in the shared (DAG) plan, 62 when unshared,
- 49 joins,
- one five-way UNION ALL, one GROUP BY, one DISTINCT,
- record-wise DAC filters over the supplier (LFA1) and customer (KNA1)
  augmenters — which is why Fig. 4's optimized ``count(*)`` plan retains
  exactly those two joins.

Structure (every component mirrors a pattern from the paper):

- core: ``acdoca ⋈ company ⋈ ledger`` (the composite interface view), with
  declared ``many to exact one`` inner joins;
- 30 many-to-one left outer augmentation joins in the consumption view:
  2 DAC-relevant singles (lfa1/kna1), 2 plain singles, 15 two-table basic
  views, 6 uses of one shared address view, 2 uses of a shared cost-object
  view (itself nesting the address view — the DAG sharing of Fig. 3), one
  GROUP BY totals view (AJ 2a-2), one DISTINCT currency view, and one
  five-way UNION ALL business-partner view (Fig. 11c).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..database import Database
from .dac import AccessControl, DacPolicy
from .model import VdmView, ViewLayer, VirtualDataModel

# The Fig. 3 structural targets (validated by tests and the E5 benchmark).
FIG3_EXPECTED = {
    "shared_tables": 47,
    "unshared_tables": 62,
    "shared_joins": 49,
    "union_alls": 1,
    "union_children": 5,
    "group_bys": 1,
    "distincts": 1,
}

# 15 master-data "double" views: (name, text-table suffix, acdoca fk column)
_DOUBLES = [
    "costcenter", "profitcenter", "glaccount", "plant", "material",
    "segment", "funcarea", "bizarea", "project", "wbselement",
    "salesorg", "paymentterms", "housebank", "taxcode", "tradepartner",
]

_SINGLES = ["controlarea", "docstatus"]

# Six address-role columns on acdoca, all joining the shared address view.
_ADDRESS_ROLES = ["shipaddr", "billaddr", "payeraddr", "vendoraddr", "plantaddr", "compaddr"]

_COST_OBJECT_ROLES = ["costobj", "altcostobj"]

_PARTNER_KINDS = ["vendorbp", "custbp", "employeebp", "bankbp", "taxauthbp"]


@dataclass
class JournalModel:
    """Builder for the JournalEntryItemBrowser analog."""

    db: Database
    rows: int = 2000
    dim_rows: int = 50
    seed: int = 3
    consumption_view: str = "journalentryitem"
    browser_view: str = "journalentryitembrowser"
    vdm: VirtualDataModel = field(init=False)
    access_control: AccessControl = field(init=False)

    def __post_init__(self) -> None:
        self.vdm = VirtualDataModel(self.db)
        self.access_control = AccessControl(self.db)

    # -- public API --------------------------------------------------------

    def build(self) -> "JournalModel":
        self._create_master_data()
        self._create_acdoca()
        self._deploy_views()
        self._deploy_dac()
        return self

    # -- tables ---------------------------------------------------------------

    def _create_master_data(self) -> None:
        db = self.db
        rng = random.Random(self.seed)
        n = self.dim_rows

        db.execute("create table company (company_id int primary key, company_name varchar(40), country varchar(3))")
        db.bulk_load("company", [(i, f"Company {i}", "DE") for i in range(5)])
        db.execute("create table ledger (ledger_id int primary key, ledger_name varchar(40))")
        db.bulk_load("ledger", [(i, f"Ledger {i}") for i in range(3)])

        # DAC-relevant masters: supplier (LFA1 analog) and customer (KNA1).
        db.execute(
            "create table lfa1 (supplier_id int primary key, supplier_name varchar(40), "
            "authgroup varchar(8))"
        )
        db.bulk_load(
            "lfa1", [(i, f"Supplier {i}", f"G{i % 3}") for i in range(n)]
        )
        db.execute(
            "create table kna1 (customer_id int primary key, customer_name varchar(40), "
            "authgroup varchar(8))"
        )
        db.bulk_load(
            "kna1", [(i, f"Customer {i}", f"G{i % 3}") for i in range(n)]
        )

        for name in _SINGLES:
            db.execute(
                f"create table {name} (id int primary key, descr varchar(40))"
            )
            db.bulk_load(name, [(i, f"{name} {i}") for i in range(n)])

        for name in _DOUBLES:
            db.execute(f"create table {name} (id int primary key, code varchar(12), textid int not null)")
            db.execute(f"create table {name}_text (id int primary key, text varchar(40))")
            db.bulk_load(f"{name}_text", [(i, f"{name} text {i}") for i in range(n)])
            db.bulk_load(name, [(i, f"{name[:3].upper()}{i:04d}", i % n) for i in range(n)])

        db.execute("create table address (addr_id int primary key, street varchar(40), country_id int not null)")
        db.execute("create table country (country_id int primary key, country_name varchar(30))")
        db.bulk_load("country", [(i, f"Country {i}") for i in range(20)])
        db.bulk_load("address", [(i, f"Street {i}", i % 20) for i in range(n)])

        db.execute("create table costobject (co_id int primary key, co_code varchar(12), co_addr int not null)")
        db.bulk_load("costobject", [(i, f"CO{i:04d}", i % n) for i in range(n)])

        # GROUP BY augmenter source: document flow steps.
        db.execute("create table docflow (dockey int not null, step int not null, flowamount decimal(15,2), primary key (dockey, step))")
        flow_rows = []
        for dockey in range(self.rows // 2):
            for step in range(rng.randint(1, 3)):
                flow_rows.append((dockey, step, f"{rng.randint(1, 999)}.00"))
        db.bulk_load("docflow", flow_rows)

        # DISTINCT augmenter source: exchange rates.
        db.execute("create table exchrates (currkey int not null, ratedate int not null, rate decimal(15,6), primary key (currkey, ratedate))")
        db.bulk_load(
            "exchrates",
            [(c, d, f"1.{c:02d}{d:02d}") for c in range(20) for d in range(3)],
        )

        # Five-way union sources (Fig. 11c: one logical business partner,
        # five subclasses in separate tables).
        for kind in _PARTNER_KINDS:
            db.execute(
                f"create table {kind} (pid int primary key, pname varchar(40))"
            )
            db.bulk_load(kind, [(i, f"{kind} {i}") for i in range(30)])

    def _create_acdoca(self) -> None:
        rng = random.Random(self.seed + 1)
        n = self.dim_rows
        columns = [
            "acdockey int primary key",
            "dockey int not null",
            "company_id int not null",
            "ledger_id int not null",
            "supplier_id int",
            "customer_id int",
            "partnertype varchar(1) not null",
            "partnerid int not null",
            "currkey int not null",
            "amount decimal(15,2)",
            "quantity int",
            "postingyear int not null",
        ]
        columns += [f"{s}_id int not null" for s in _SINGLES]
        columns += [f"{d}_id int not null" for d in _DOUBLES]
        columns += [f"{role}_id int not null" for role in _ADDRESS_ROLES]
        columns += [f"{role}_id int not null" for role in _COST_OBJECT_ROLES]
        self.db.execute(f"create table acdoca ({', '.join(columns)})")

        partner_types = ["V", "C", "E", "B", "T"]
        rows = []
        for key in range(self.rows):
            row = [
                key,
                key % max(self.rows // 2, 1),
                key % 5,
                key % 3,
                rng.randrange(n) if rng.random() < 0.7 else None,
                rng.randrange(n) if rng.random() < 0.7 else None,
                partner_types[key % 5],
                rng.randrange(30),
                rng.randrange(20),
                f"{rng.randint(1, 99999)}.{rng.randint(0, 99):02d}",
                rng.randint(1, 500),
                2020 + key % 5,
            ]
            row += [rng.randrange(n) for _ in _SINGLES]
            row += [rng.randrange(n) for _ in _DOUBLES]
            row += [rng.randrange(n) for _ in _ADDRESS_ROLES]
            row += [rng.randrange(n) for _ in _COST_OBJECT_ROLES]
            rows.append(tuple(row))
        self.db.bulk_load("acdoca", rows)

    # -- views ----------------------------------------------------------------

    def _deploy_views(self) -> None:
        vdm = self.vdm
        aj = "left outer many to one join"

        # Basic layer: renaming views over the journal table, stacked to
        # reach the paper's interface-view nesting depth.
        vdm.deploy(VdmView(
            "v_acdoca_raw", ViewLayer.BASIC,
            "create view v_acdoca_raw as select * from acdoca",
            ("acdoca",), "raw journal line items",
        ))
        vdm.deploy(VdmView(
            "v_acdoca_core", ViewLayer.BASIC,
            "create view v_acdoca_core as select * from v_acdoca_raw",
            ("v_acdoca_raw",), "journal line items, technical fields mapped",
        ))
        vdm.deploy(VdmView(
            "v_acdoca_semantic", ViewLayer.BASIC,
            "create view v_acdoca_semantic as select * from v_acdoca_core",
            ("v_acdoca_core",), "journal line items with business semantics",
        ))
        vdm.deploy(VdmView(
            "v_acdoca_std", ViewLayer.BASIC,
            "create view v_acdoca_std as select * from v_acdoca_semantic",
            ("v_acdoca_semantic",), "standardized journal line items",
        ))

        # Shared address view (used six times; Fig. 3's DAG sharing).
        vdm.deploy(VdmView(
            "v_address", ViewLayer.BASIC,
            "create view v_address as "
            "select a.addr_id, a.street, c.country_name "
            f"from address a {aj} country c on a.country_id = c.country_id",
            ("address", "country"), "postal address with country",
        ))

        # Shared cost-object view (nests the address view).
        vdm.deploy(VdmView(
            "v_costobject", ViewLayer.BASIC,
            "create view v_costobject as "
            "select co.co_id, co.co_code, ad.street as co_street, "
            "ad.country_name as co_country "
            f"from costobject co {aj} v_address ad on co.co_addr = ad.addr_id",
            ("costobject", "v_address"), "cost object with address",
        ))

        # 15 two-table master-data views.
        for name in _DOUBLES:
            vdm.deploy(VdmView(
                f"v_{name}", ViewLayer.BASIC,
                f"create view v_{name} as "
                f"select m.id as {name}_key, m.code as {name}_code, "
                f"t.text as {name}_text "
                f"from {name} m {aj} {name}_text t on m.textid = t.id",
                (name, f"{name}_text"), f"{name} master data",
            ))

        # GROUP BY augmenter (AJ 2a-2): per-document flow totals.
        vdm.deploy(VdmView(
            "v_doctotals", ViewLayer.BASIC,
            "create view v_doctotals as "
            "select dockey as flow_dockey, sum(flowamount) as flowtotal, "
            "count(*) as flowsteps from docflow group by dockey",
            ("docflow",), "document flow totals",
        ))

        # DISTINCT augmenter: currencies with known exchange rates.
        vdm.deploy(VdmView(
            "v_knowncurrencies", ViewLayer.BASIC,
            "create view v_knowncurrencies as select distinct currkey from exchrates",
            ("exchrates",), "currencies with exchange rates",
        ))

        # Five-way UNION ALL business-partner view (Fig. 11c).
        union_parts = []
        for kind, tag in zip(_PARTNER_KINDS, ["V", "C", "E", "B", "T"]):
            union_parts.append(
                f"select '{tag}' as ptype, pid as pkey, pname from {kind}"
            )
        vdm.deploy(VdmView(
            "v_businesspartner", ViewLayer.BASIC,
            "create view v_businesspartner as " + " union all ".join(union_parts),
            tuple(_PARTNER_KINDS), "unified business partner",
        ))

        # Composite interface view: acdoca ⋈ company ⋈ ledger.
        vdm.deploy(VdmView(
            "v_journal_interface", ViewLayer.COMPOSITE,
            "create view v_journal_interface as "
            "select b.*, c.company_name, l.ledger_name "
            "from v_acdoca_std b "
            "inner many to exact one join company c on b.company_id = c.company_id "
            "inner many to exact one join ledger l on b.ledger_id = l.ledger_id",
            ("v_acdoca_std", "company", "ledger"), "journal interface view",
        ))

        # Consumption view: the 30 augmentation joins.
        selects = ["b.*"]
        joins = []

        def add(view: str, alias: str, condition: str, fields: list[str]) -> None:
            joins.append(f"  {aj} {view} {alias} on {condition}")
            selects.extend(fields)

        add("lfa1", "sup", "b.supplier_id = sup.supplier_id",
            ["sup.supplier_name", "sup.authgroup as supplierauthgroup"])
        add("kna1", "cus", "b.customer_id = cus.customer_id",
            ["cus.customer_name", "cus.authgroup as customerauthgroup"])
        for name in _SINGLES:
            add(name, f"s_{name}", f"b.{name}_id = s_{name}.id",
                [f"s_{name}.descr as {name}_descr"])
        for name in _DOUBLES:
            add(f"v_{name}", f"d_{name}", f"b.{name}_id = d_{name}.{name}_key",
                [f"d_{name}.{name}_code", f"d_{name}.{name}_text"])
        for role in _ADDRESS_ROLES:
            add("v_address", f"ad_{role}", f"b.{role}_id = ad_{role}.addr_id",
                [f"ad_{role}.street as {role}_street",
                 f"ad_{role}.country_name as {role}_country"])
        for role in _COST_OBJECT_ROLES:
            add("v_costobject", f"co_{role}", f"b.{role}_id = co_{role}.co_id",
                [f"co_{role}.co_code as {role}_code",
                 f"co_{role}.co_country as {role}_country"])
        add("v_doctotals", "fl", "b.dockey = fl.flow_dockey",
            ["fl.flowtotal", "fl.flowsteps"])
        add("v_knowncurrencies", "kc", "b.currkey = kc.currkey",
            ["kc.currkey as knowncurrkey"])
        add("v_businesspartner", "bp",
            "b.partnertype = bp.ptype and b.partnerid = bp.pkey",
            ["bp.pname as partnername"])

        sql = (
            f"create view {self.consumption_view} as\n"
            "select " + ",\n       ".join(selects) + "\n"
            "from v_journal_interface b\n" + "\n".join(joins)
        )
        deps = tuple(
            ["v_journal_interface", "lfa1", "kna1"] + _SINGLES
            + [f"v_{d}" for d in _DOUBLES]
            + ["v_address", "v_costobject", "v_doctotals",
               "v_knowncurrencies", "v_businesspartner"]
        )
        vdm.deploy(VdmView(self.consumption_view, ViewLayer.CONSUMPTION, sql, deps,
                           "journal entry item consumption view"))

    def _deploy_dac(self) -> None:
        """Record-wise access control over the supplier/customer augmenters
        (the Fig. 4 joins that survive count(*) optimization)."""
        self.access_control.register(
            self.consumption_view,
            DacPolicy("supplier-auth",
                      "supplierauthgroup = :suppliergroup or supplierauthgroup is null"),
        )
        self.access_control.register(
            self.consumption_view,
            DacPolicy("customer-auth",
                      "customerauthgroup = :customergroup or customerauthgroup is null"),
        )
        self.access_control.deploy_protected_view(
            self.browser_view,
            self.consumption_view,
            {"suppliergroup": "G1", "customergroup": "G1"},
        )

"""The draft-table pattern (paper §6.1, Fig. 11b).

Cloud apps are stateless at the server but stateful for the user: in-flight
("draft") business documents live in a separate table next to the active
one.  Analytical queries read only the active table; operational queries see
the logical table ``active ∪ draft``, expressed as a branch-id-tagged
UNION ALL — exactly the shape whose uniqueness derivation Fig. 12b requires
(``(bid, key)`` is unique because the bid separates the branches).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.schema import ColumnSchema, TableSchema, UniqueConstraint
from ..database import Database
from ..datatypes import varchar

ACTIVE_BID = 1
DRAFT_BID = 2


@dataclass
class DraftPattern:
    """An active/draft table pair plus its logical union view."""

    db: Database
    active_table: str
    draft_table: str
    union_view: str
    key_columns: tuple[str, ...]
    columns: tuple[str, ...]

    @classmethod
    def create(cls, db: Database, active_table: str, union_view: str | None = None) -> "DraftPattern":
        """Create the draft twin of ``active_table`` and deploy the logical
        union view ``<active>_with_draft`` (or ``union_view``)."""
        active = db.catalog.table_schema(active_table)
        draft_name = f"{active.name}_draft"
        draft_columns = [
            ColumnSchema(c.name, c.data_type, c.nullable) for c in active.columns
        ]
        # Draft rows additionally carry the editing session.
        draft_columns.append(ColumnSchema("draft_session", varchar(32)))
        constraints = [
            UniqueConstraint(u.columns, u.is_primary) for u in active.unique_constraints
        ]
        db.create_table_from_schema(TableSchema(draft_name, draft_columns, constraints))

        key = active.primary_key or ()
        names = tuple(c.name for c in active.columns)
        view_name = (union_view or f"{active.name}_with_draft").lower()
        columns_sql = ", ".join(names)
        sql = (
            f"create view {view_name} as\n"
            f"select {ACTIVE_BID} as bid_, {columns_sql} from {active.name}\n"
            "union all\n"
            f"select {DRAFT_BID} as bid_, {columns_sql} from {draft_name}"
        )
        db.execute(sql)
        return cls(db, active.name, draft_name, view_name, key, names)

    def save_draft(self, row: dict[str, object], session: str) -> None:
        """Store an in-progress document version in the draft table."""
        names = list(self.columns) + ["draft_session"]
        values = [row.get(c) for c in self.columns] + [session]
        placeholders = ", ".join(_sql_literal(v) for v in values)
        self.db.execute(
            f"insert into {self.draft_table} ({', '.join(names)}) values ({placeholders})"
        )

    def activate(self, key_value: dict[str, object]) -> int:
        """Promote a draft row to the active table and drop the draft."""
        predicate = " and ".join(
            f"{k} = {_sql_literal(v)}" for k, v in key_value.items()
        )
        rows = self.db.query(
            f"select {', '.join(self.columns)} from {self.draft_table} where {predicate}"
        )
        count = 0
        for row in rows.rows:
            placeholders = ", ".join(_sql_literal(v) for v in row)
            self.db.execute(
                f"insert into {self.active_table} ({', '.join(self.columns)}) "
                f"values ({placeholders})"
            )
            count += 1
        self.db.execute(f"delete from {self.draft_table} where {predicate}")
        return count


def _sql_literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)

"""Synthetic VDM generator.

Builds parameterized VDM view populations for the benchmarks:

- :func:`SyntheticVdm.build_views` — the Fig. 14 population: N consumption
  views of varying size, each shaped like the paper's draft-pattern views
  (a top-level Union All of an active and a draft branch, each branch
  augmenting a fact table with many-to-one dimension joins), plus the two
  §5/§6.3 extension variants (plain left outer join vs. declared-intent
  case join) over a mix of canonical and non-canonical augmenters;
- :func:`build_wide_view` — the ablation A1 shape: one fact table with a
  configurable number of unused augmentation joins.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..database import Database
from ..datatypes import INTEGER, decimal_type, varchar
from .draft import ACTIVE_BID, DRAFT_BID
from .extension import CustomFieldsExtension


@dataclass
class GeneratedView:
    """Metadata for one generated consumption view and its extensions."""

    name: str
    fact_table: str
    draft_table: str
    extended_plain: str   # extension via plain LEFT OUTER JOIN (Fig. 14a)
    extended_case: str    # extension via CASE JOIN (Fig. 14b)
    rows: int
    dim_count: int
    canonical: bool       # augmenter branches in canonical (Project/Scan) shape


class SyntheticVdm:
    """Deterministic generator of a synthetic VDM population."""

    def __init__(self, db: Database, seed: int = 42):
        self.db = db
        self.rng = random.Random(seed)
        self._dims: list[str] = []

    # -- shared dimension pool --------------------------------------------------

    def build_dimensions(self, count: int = 12, rows: int = 200) -> list[str]:
        """Create ``count`` shared dimension tables with ``rows`` rows each."""
        for index in range(count):
            name = f"dim_{index}"
            self.db.execute(
                f"create table {name} (dkey int primary key, "
                f"dname varchar(30), dgroup int not null)"
            )
            self.db.bulk_load(
                name,
                [(k, f"{name}_v{k}", k % 10) for k in range(rows)],
            )
            self._dims.append(name)
        return list(self._dims)

    # -- Fig. 14 population --------------------------------------------------------

    def build_views(
        self,
        count: int = 100,
        min_rows: int = 50,
        max_rows: int = 4000,
        min_dims: int = 2,
        max_dims: int = 6,
        canonical_ratio: float = 0.5,
        dim_rows: int = 200,
    ) -> list[GeneratedView]:
        """Create ``count`` draft-pattern consumption views + extensions.

        Row counts are log-spaced between ``min_rows`` and ``max_rows`` so
        execution times spread over the axes like the paper's Fig. 14
        scatter plots.
        """
        if not self._dims:
            self.build_dimensions(rows=dim_rows)
        extension = CustomFieldsExtension(self.db)
        views: list[GeneratedView] = []
        for index in range(count):
            fraction = index / max(count - 1, 1)
            rows = int(
                math.exp(
                    math.log(min_rows)
                    + fraction * (math.log(max_rows) - math.log(min_rows))
                )
            )
            dim_count = self.rng.randint(min_dims, max_dims)
            canonical = self.rng.random() < canonical_ratio
            views.append(
                self._build_one(index, rows, dim_count, canonical, extension, dim_rows)
            )
        return views

    def _build_one(
        self,
        index: int,
        rows: int,
        dim_count: int,
        canonical: bool,
        extension: CustomFieldsExtension,
        dim_rows: int,
    ) -> GeneratedView:
        fact = f"fact_{index}"
        draft = f"{fact}_draft"
        dims = self.rng.sample(self._dims, dim_count)
        dim_cols = ", ".join(f"dk{i} int not null" for i in range(dim_count))
        self.db.execute(
            f"create table {fact} (fkey int primary key, amount decimal(15,2), "
            f"qty int, {dim_cols})"
        )
        self.db.execute(
            f"create table {draft} (fkey int primary key, amount decimal(15,2), "
            f"qty int, {dim_cols}, draft_session varchar(32))"
        )
        rng = self.rng

        def fact_row(key: int) -> tuple:
            return (
                key,
                f"{rng.randint(1, 99999)}.{rng.randint(0, 99):02d}",
                rng.randint(1, 100),
                *[rng.randrange(dim_rows) for _ in range(dim_count)],
            )

        self.db.bulk_load(fact, [fact_row(k) for k in range(rows)])
        draft_rows = max(rows // 20, 1)
        self.db.bulk_load(
            draft,
            [fact_row(rows + k) + (f"session{k}",) for k in range(draft_rows)],
        )

        # Custom field (added BEFORE the views so extensions can expose it).
        extension.add_custom_field(fact, "zz_custom", varchar(20))
        extension.add_custom_field(draft, "zz_custom", varchar(20))

        base_cols = "fkey, amount, qty, " + ", ".join(f"dk{i}" for i in range(dim_count))
        view = f"v_{index}"
        # Non-canonical views carry a (business-rule) selection in every
        # branch of the logical table; the extension replicates it.  This is
        # the shape the structural ASJ heuristic cannot handle (Fig. 14a)
        # but the declared-intent case join can (Fig. 14b).
        branch_filter = None if canonical else "qty >= 0"

        def branch(table: str, bid: int) -> str:
            joins = "\n".join(
                f"  left outer many to one join {dim} d{i} on b.dk{i} = d{i}.dkey"
                for i, dim in enumerate(dims)
            )
            dim_fields = ", ".join(
                f"d{i}.dname as dname{i}, d{i}.dgroup as dgroup{i}"
                for i in range(dim_count)
            )
            cols = ", ".join(f"b.{c.strip()}" for c in base_cols.split(","))
            where = "\nwhere b.qty >= 0" if branch_filter else ""
            return (
                f"select {bid} as bid_, {cols}, {dim_fields}\n"
                f"from {table} b\n{joins}{where}"
            )

        self.db.execute(
            f"create view {view} as\n{branch(fact, ACTIVE_BID)}\n"
            f"union all\n{branch(draft, DRAFT_BID)}"
        )

        key_map = [("fkey", "fkey")]
        ext_plain = f"{view}_ext_plain"
        ext_case = f"{view}_ext_case"
        pattern = _FakeDraft(self.db, fact, draft)
        extension.extend_draft_view(
            ext_plain, view, pattern, key_map, ["zz_custom"],
            use_case_join=False, branch_filter=branch_filter,
        )
        extension.extend_draft_view(
            ext_case, view, pattern, key_map, ["zz_custom"],
            use_case_join=True, branch_filter=branch_filter,
        )
        return GeneratedView(
            view, fact, draft, ext_plain, ext_case, rows, dim_count, canonical
        )


class _FakeDraft:
    """Adapter exposing the DraftPattern attribute surface the extension
    needs, for table pairs created directly by the generator."""

    def __init__(self, db: Database, active: str, draft: str):
        self.db = db
        self.active_table = active
        self.draft_table = draft


def build_wide_view(
    db: Database,
    name: str,
    join_count: int,
    fact_rows: int = 5000,
    dim_rows: int = 100,
    seed: int = 7,
) -> str:
    """Ablation A1: one expansive view with ``join_count`` augmentation
    joins, of which a query typically uses none (paper §4.1: views join
    over 100 tables; queries touch 10-20 fields)."""
    rng = random.Random(seed)
    fact = f"{name}_fact"
    columns = ", ".join(f"k{i} int not null" for i in range(join_count))
    prefix = f", {columns}" if join_count else ""
    db.execute(f"create table {fact} (fkey int primary key, amount decimal(15,2){prefix})")
    db.bulk_load(
        fact,
        [
            (
                key,
                f"{rng.randint(1, 9999)}.00",
                *[rng.randrange(dim_rows) for _ in range(join_count)],
            )
            for key in range(fact_rows)
        ],
    )
    joins = []
    fields = ["b.fkey", "b.amount"]
    for index in range(join_count):
        dim = f"{name}_dim_{index}"
        db.execute(f"create table {dim} (dkey int primary key, dval varchar(20))")
        db.bulk_load(dim, [(k, f"val{k}") for k in range(dim_rows)])
        joins.append(
            f"  left outer many to one join {dim} d{index} on b.k{index} = d{index}.dkey"
        )
        fields.append(f"d{index}.dval as dval{index}")
    sql = (
        f"create view {name} as\nselect {', '.join(fields)}\nfrom {fact} b\n"
        + "\n".join(joins)
    )
    db.execute(sql)
    return name

"""CDS entity/view -> SQL compilation.

``compile_entity_view`` is where the paper's central VDM mechanism lives:
every association used by a path expression becomes a **left outer
many-to-one join** (an augmentation join, §4.2), annotated with the declared
cardinality so the optimizer can prove augmentation even without unique
constraints (§7.3).  Unused associations cost nothing — if a query over the
view does not touch an association's fields, the UAJ rule removes the join.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..database import Database
from ..errors import CatalogError
from .cds import Cardinality, Entity, PathField

_CARDINALITY_SQL = {
    Cardinality.MANY_TO_ONE: "left outer many to one join",
    Cardinality.MANY_TO_EXACT_ONE: "left outer many to exact one join",
    Cardinality.ONE_TO_ONE: "left outer one to one join",
    Cardinality.ONE_TO_MANY: "left outer join",
}


def deploy_entity(db: Database, entity: Entity) -> None:
    """Create the backing table for an entity."""
    db.create_table_from_schema(entity.to_table_schema())


def compile_entity_view(
    view_name: str,
    entity: Entity,
    fields: Sequence[PathField | str],
    entities: dict[str, Entity],
    where: str | None = None,
) -> str:
    """Compile a basic view over ``entity`` exposing ``fields``.

    ``fields`` may be local element names or one-step association paths
    (``"soldtoparty.name as customername"`` style is expressed as
    ``PathField("soldtoparty.name", "customername")``).
    """
    normalized = [f if isinstance(f, PathField) else PathField(f) for f in fields]
    used_associations: list[str] = []
    select_items: list[str] = []
    for field in normalized:
        head, element = field.parts()
        if element is None:
            entity.element(head)  # validate
            select_items.append(f"b.{head} as {field.output_name}")
        else:
            association = entity.association(head)
            target = entities.get(association.target.lower())
            if target is None:
                raise CatalogError(
                    f"association {head!r} targets unknown entity {association.target!r}"
                )
            target.element(element)  # validate
            alias = f"a_{association.name.lower()}"
            if association.name.lower() not in used_associations:
                used_associations.append(association.name.lower())
            select_items.append(f"{alias}.{element} as {field.output_name}")

    join_clauses: list[str] = []
    for name in used_associations:
        association = entity.association(name)
        if not association.cardinality.is_to_one:
            raise CatalogError(
                f"path expressions over to-many association {name!r} are not supported"
            )
        alias = f"a_{name}"
        condition = " and ".join(
            f"b.{local} = {alias}.{remote}" for local, remote in association.on
        )
        join_sql = _CARDINALITY_SQL[association.cardinality]
        join_clauses.append(
            f"  {join_sql} {association.target.lower()} {alias} on {condition}"
        )

    sql_lines = [f"create view {view_name.lower()} as"]
    sql_lines.append("select " + ", ".join(select_items))
    sql_lines.append(f"from {entity.name} b")
    sql_lines.extend(join_clauses)
    if where:
        sql_lines.append(f"where {where}")
    return "\n".join(sql_lines)


def compile_join_view(
    view_name: str,
    base_view: str,
    base_fields: Sequence[str],
    augmentations: Iterable[tuple[str, Sequence[str], str, str]],
    where: str | None = None,
    cardinality_sql: str = "left outer many to one join",
) -> str:
    """Compile a composite/consumption view joining ``base_view`` with
    augmenter views.

    ``augmentations`` yields ``(view, fields, local_expr, remote_expr)``
    tuples; each becomes one declared many-to-one left outer join — the
    paper's expansive-join-view construction (§4.1).
    """
    select_items = [f"b.{f}" for f in base_fields]
    joins = []
    for index, (view, fields, local, remote) in enumerate(augmentations):
        alias = f"j{index}"
        select_items.extend(f"{alias}.{f}" for f in fields)
        joins.append(
            f"  {cardinality_sql} {view} {alias} on b.{local} = {alias}.{remote}"
        )
    sql_lines = [f"create view {view_name.lower()} as"]
    sql_lines.append("select " + ", ".join(select_items))
    sql_lines.append(f"from {base_view} b")
    sql_lines.extend(joins)
    if where:
        sql_lines.append(f"where {where}")
    return "\n".join(sql_lines)

"""Record-wise data access control (DAC) filter injection (paper §3).

The consumption view is "protected with record-wise data access control,
filtering out the records that a user is not authorized to access.  The DAC
filter is automatically injected per user when querying."  Crucially for
Fig. 4, DAC predicates may reference *augmenter* columns — which keeps those
augmentation joins alive through UAJ elimination while everything else is
pruned.

A :class:`DacPolicy` is a condition template over a view's columns with
``:attr`` placeholders filled from the user's authorization attributes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..database import Database
from ..errors import BindError


@dataclass(frozen=True)
class DacPolicy:
    """One access-control rule for a view."""

    name: str
    condition: str  # SQL over the view's columns, ":attr" placeholders

    def render(self, user_attributes: dict[str, object]) -> str:
        def substitute(match: "re.Match[str]") -> str:
            attr = match.group(1)
            if attr not in user_attributes:
                raise BindError(
                    f"DAC policy {self.name!r} needs user attribute {attr!r}"
                )
            return _sql_literal(user_attributes[attr])

        return re.sub(r":([a-zA-Z_][a-zA-Z0-9_]*)", substitute, self.condition)


class AccessControl:
    """Registry of DAC policies and the per-user query rewriter."""

    def __init__(self, db: Database):
        self.db = db
        self._policies: dict[str, list[DacPolicy]] = {}

    def register(self, view: str, policy: DacPolicy) -> None:
        self._policies.setdefault(view.lower(), []).append(policy)

    def policies(self, view: str) -> list[DacPolicy]:
        return list(self._policies.get(view.lower(), []))

    def protected_sql(
        self,
        view: str,
        user_attributes: dict[str, object],
        select: str = "*",
        suffix: str = "",
    ) -> str:
        """The per-user query over a protected view: the registered DAC
        conditions are injected as a conjunctive WHERE clause."""
        conditions = [p.render(user_attributes) for p in self.policies(view)]
        where = f" where {' and '.join(f'({c})' for c in conditions)}" if conditions else ""
        tail = f" {suffix}" if suffix else ""
        return f"select {select} from {view}{where}{tail}"

    def query(
        self,
        view: str,
        user_attributes: dict[str, object],
        select: str = "*",
        suffix: str = "",
    ):
        """Run a DAC-protected query for a user."""
        return self.db.query(self.protected_sql(view, user_attributes, select, suffix))

    def deploy_protected_view(
        self, name: str, view: str, user_attributes: dict[str, object]
    ) -> str:
        """Materialize a user's protected view as a named SQL view (used by
        benchmarks that replay one user's workload)."""
        sql = f"create view {name.lower()} as {self.protected_sql(view, user_attributes)}"
        self.db.execute(sql)
        return sql


def _sql_literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)

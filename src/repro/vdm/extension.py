"""Custom-fields extension (paper §5, Figs. 7-9; §6.3, Fig. 13b).

Customers add fields to SAP-managed tables and expect them in SAP-managed
consumption views.  Redefining every interim view is not upgrade-safe, so
the VDM pattern is:

1. physically add the field to the base table (``add_custom_field``);
2. redefine only the *top* consumption view, exposing the field through an
   **augmentation self-join** with the base table on its key
   (``extend_view`` — Fig. 8b);
3. when the base table participates in the draft pattern, the logical table
   is a Union All and the self-join needs the ``CASE JOIN`` declared-intent
   syntax for reliable optimization (``extend_draft_view`` — Fig. 13b,
   measured in Fig. 14).

``extend_draft_view(..., canonical=False)`` deliberately produces a
non-canonical augmenter (extra computed column in each union branch).  The
declared-intent case join still optimizes it; the structural heuristic does
not — the mechanism behind the Fig. 14a outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..catalog.schema import ColumnSchema
from ..database import Database
from ..datatypes import DataType
from .draft import ACTIVE_BID, DRAFT_BID, DraftPattern


@dataclass(frozen=True)
class ExtensionField:
    name: str
    data_type: DataType


class CustomFieldsExtension:
    """Manages custom fields and the upgrade-safe view extensions."""

    def __init__(self, db: Database):
        self.db = db

    # -- step 1: the physical field ------------------------------------------

    def add_custom_field(
        self, table: str, name: str, data_type: DataType, default: object = None
    ) -> None:
        self.db.catalog.table(table).add_column(
            ColumnSchema(name.lower(), data_type, nullable=True), default
        )

    # -- step 2: plain ASJ extension (Fig. 8b / Fig. 9b) ----------------------------

    def extend_view(
        self,
        extended_name: str,
        stable_view: str,
        base_table: str,
        key_map: Sequence[tuple[str, str]],
        ext_fields: Sequence[str],
        use_case_join: bool = False,
    ) -> str:
        """Create ``extended_name`` = ``stable_view`` + custom fields of
        ``base_table`` via a self-join on key.

        ``key_map`` pairs (view column, table key column); the view must
        already project the key (paper: "This technique works when V already
        projects the key field of T").
        """
        join_kw = "case join" if use_case_join else "left outer join"
        condition = " and ".join(
            f"v.{view_col} = x.{key_col}" for view_col, key_col in key_map
        )
        ext_select = ", ".join(f"x.{f}" for f in ext_fields)
        sql = (
            f"create view {extended_name.lower()} as\n"
            f"select v.*, {ext_select}\n"
            f"from {stable_view} v {join_kw} {base_table} x on {condition}"
        )
        self.db.execute(sql)
        return sql

    # -- step 3: draft-pattern extension (Fig. 13b) -----------------------------------

    def extend_draft_view(
        self,
        extended_name: str,
        stable_view: str,
        draft: DraftPattern,
        key_map: Sequence[tuple[str, str]],
        ext_fields: Sequence[str],
        bid_column: str = "bid_",
        use_case_join: bool = True,
        branch_filter: str | None = None,
    ) -> str:
        """Extend a view over the logical (active ∪ draft) table.

        The augmenter is the branch-id-tagged Union All of the active and
        draft tables; the join matches on ``(bid, key)``.

        ``branch_filter`` replicates a selection the stable view applies to
        its branches (apps generate the extension SQL from the same logical
        table definition, so the filters match).  Such filtered branches are
        *not* in the canonical shape: the purely structural ASJ heuristic
        gives up on them, while the declared-intent case join verifies
        filter subsumption branch by branch and still optimizes — the
        paper's Fig. 14 mechanism.
        """
        where = f" where {branch_filter}" if branch_filter else ""
        key_cols = ", ".join(k for _, k in key_map)
        ext_cols = ", ".join(ext_fields)
        union_sql = (
            f"(select {ACTIVE_BID} as bid_u, {key_cols}, {ext_cols} "
            f"from {draft.active_table}{where}\n"
            " union all\n"
            f" select {DRAFT_BID} as bid_u, {key_cols}, {ext_cols} "
            f"from {draft.draft_table}{where})"
        )
        join_kw = "case join" if use_case_join else "left outer join"
        condition = " and ".join(
            [f"v.{bid_column} = x.bid_u"]
            + [f"v.{view_col} = x.{key_col}" for view_col, key_col in key_map]
        )
        ext_select = ", ".join(f"x.{f}" for f in ext_fields)
        sql = (
            f"create view {extended_name.lower()} as\n"
            f"select v.*, {ext_select}\n"
            f"from {stable_view} v {join_kw} {union_sql} x on {condition}"
        )
        self.db.execute(sql)
        return sql

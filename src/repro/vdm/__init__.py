"""The Virtual Data Model (VDM) layer (paper §2.3, §3).

A CDS-inspired modeling layer on top of the SQL engine:

- :mod:`repro.vdm.cds` — entities, elements, and associations with declared
  cardinalities; path expressions (``customer.name``) compile to
  augmentation joins;
- :mod:`repro.vdm.model` — the layered view registry (basic / composite /
  consumption) with nesting-depth accounting;
- :mod:`repro.vdm.compiler` — CDS definitions -> SQL views;
- :mod:`repro.vdm.extension` — the §5 custom-fields extension: add fields to
  a table and expose them through an upgrade-safe augmentation self-join
  (plain or case join, with the draft-pattern union variant of §6.3);
- :mod:`repro.vdm.draft` — the active/draft table pattern (§6.1, Fig. 11b);
- :mod:`repro.vdm.dac` — record-level data access control filters (§3);
- :mod:`repro.vdm.generator` — a synthetic VDM generator for benchmarks;
- :mod:`repro.vdm.journal` — the JournalEntryItemBrowser analog with
  Fig. 3's structural statistics.
"""

from .cds import Association, Cardinality, Element, Entity  # noqa: F401
from .model import ViewLayer, VdmView, VirtualDataModel  # noqa: F401
from .compiler import compile_entity_view, deploy_entity  # noqa: F401
from .extension import CustomFieldsExtension  # noqa: F401
from .draft import DraftPattern  # noqa: F401
from .dac import AccessControl, DacPolicy  # noqa: F401

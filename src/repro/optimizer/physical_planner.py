"""Logical → physical plan compilation.

The planner walks the (bound, optionally optimized) logical plan and
chooses physical strategies using the existing cost/stats machinery:

- every ``Scan`` becomes a ``BatchScan`` restricted to the columns the
  plan actually references (the engine-side half of the paper's "remove
  unnecessary operations" story);
- a ``Filter`` directly over a ``Scan`` donates its ``col <op> const``
  conjuncts to the scan as plan-time zone-map prune bounds, so NSE block
  pruning composes with streaming;
- equi-joins pick their hash build side from estimated cardinalities
  (the §4.4 payoff: a limit pushed to the anchor makes the anchor the
  build side, and a declared-unique augmentation side lets the probe
  stop early);
- pipeline breakers (Sort, HashAggregate, join build sides) are implied
  by the chosen operator classes — everything else streams.
"""

from __future__ import annotations

from ..algebra import ops
from ..algebra.expr import Call, ColRef, Const, Expr, conjuncts, referenced_cids
from ..engine.executor import _collect_used_cids
from ..engine.physical import (
    BatchScanExec,
    DistinctExec,
    FilterExec,
    HashAggregateExec,
    HashJoinExec,
    LimitExec,
    OneRowExec,
    PhysicalOp,
    ProjectExec,
    SortExec,
    TopNExec,
    UnionAllExec,
    _equi_pair,
)
from ..sql.ast import CardinalityBound
from .cost import CardinalityEstimator
from .stats import StatisticsProvider

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def create_physical_plan(
    plan: ops.LogicalOp, catalog, used: frozenset[int] | None = None,
    estimate: bool = True,
) -> PhysicalOp:
    """Compile a logical plan into an executable physical operator tree.

    When ``estimate`` is true every physical operator is stamped with the
    optimizer's estimated output rows (``PhysicalOp.est_rows``) so the
    plan-feedback layer can join estimates against actuals post-execution.
    """
    if used is None:
        used = _collect_used_cids(plan)
    estimator = CardinalityEstimator(StatisticsProvider(catalog))
    root = _compile(plan, used, estimator)
    if estimate:
        _stamp_estimates(root, estimator)
    return root


def _stamp_estimates(root: PhysicalOp, estimator: CardinalityEstimator) -> None:
    """Stamp ``est_rows`` on every operator in the compiled tree.

    Compilation is 1:1, so each physical node still carries its logical
    counterpart; estimation failures leave ``est_rows`` as None rather
    than failing the query (the estimate is diagnostics, not planning).
    """
    for op in root.walk():
        try:
            op.est_rows = estimator.estimate(op.logical)
        except Exception:  # pragma: no cover - defensive
            op.est_rows = None


def _compile(
    op: ops.LogicalOp, used: frozenset[int], estimator: CardinalityEstimator
) -> PhysicalOp:
    if isinstance(op, ops.OneRow):
        return OneRowExec(op)
    if isinstance(op, ops.Scan):
        return _compile_scan(op, used)
    if isinstance(op, ops.Filter):
        if isinstance(op.child, ops.Scan):
            bounds = _prune_bounds(op.predicate, op.child)
            if bounds:
                scan = _compile_scan(op.child, used, bounds)
                return FilterExec(op, scan)
        return FilterExec(op, _compile(op.child, used, estimator))
    if isinstance(op, ops.Project):
        items = [(col, expr) for col, expr in op.items if col.cid in used]
        return ProjectExec(op, _compile(op.child, used, estimator), items)
    if isinstance(op, ops.Limit):
        if isinstance(op.child, ops.Sort) and op.limit is not None:
            # Limit-over-Sort fuses into a bounded-heap TopN: the full sort
            # (buffer all rows, sort, discard all but k) becomes an
            # O(rows · log k) heap that holds k rows — the §4.4 paging
            # pattern (ORDER BY ... LIMIT k OFFSET m) never materializes
            # the table.
            return TopNExec(
                op, op.child, _compile(op.child.child, used, estimator)
            )
        return LimitExec(op, _compile(op.child, used, estimator))
    if isinstance(op, ops.Sort):
        return SortExec(op, _compile(op.child, used, estimator))
    if isinstance(op, ops.Distinct):
        return DistinctExec(op, _compile(op.child, used, estimator))
    if isinstance(op, ops.Aggregate):
        return HashAggregateExec(op, _compile(op.child, used, estimator))
    if isinstance(op, ops.UnionAll):
        positions = [pos for pos, col in enumerate(op.output) if col.cid in used]
        children = []
        for child, mapping in zip(op.inputs, op.child_maps):
            child_used = used | frozenset(mapping[p] for p in positions)
            children.append(_compile(child, child_used, estimator))
        return UnionAllExec(op, children, positions)
    if isinstance(op, ops.Join):
        return _compile_join(op, used, estimator)
    raise NotImplementedError(f"no physical operator for {type(op).__name__}")


def _compile_scan(
    op: ops.Scan, used: frozenset[int], bounds=None
) -> BatchScanExec:
    wanted = [col for col in op.output if col.cid in used]
    return BatchScanExec(op, wanted, bounds)


def _prune_bounds(predicate: Expr, scan: ops.Scan):
    """Plan-time extraction of ``col <op> const`` conjuncts usable against
    the scanned table's zone maps.  Bound *evaluation* happens at open time
    in :meth:`BatchScanExec._pruned_row_ids` — zone maps reflect the table
    as of execution, not planning."""
    scan_cids = scan.output_cids
    bounds: list[tuple[str, str, object]] = []
    for conjunct in conjuncts(predicate):
        if not (isinstance(conjunct, Call) and conjunct.op in _FLIP):
            continue
        a, b = conjunct.args
        if isinstance(a, ColRef) and isinstance(b, Const) and a.cid in scan_cids:
            if b.value is not None:
                bounds.append((a.name, conjunct.op, b.value))
        elif isinstance(b, ColRef) and isinstance(a, Const) and b.cid in scan_cids:
            if a.value is not None:
                bounds.append((b.name, _FLIP[conjunct.op], a.value))
    return bounds


def _compile_join(
    op: ops.Join, used: frozenset[int], estimator: CardinalityEstimator
) -> HashJoinExec:
    condition_refs = (
        referenced_cids(op.condition) if op.condition is not None else frozenset()
    )
    child_used = used | condition_refs
    left = _compile(op.left, child_used, estimator)
    right = _compile(op.right, child_used, estimator)

    equi: list[tuple[Expr, Expr]] = []
    residual: list[Expr] = []
    if op.condition is not None:
        left_cids = op.left.output_cids
        right_cids = op.right.output_cids
        for conjunct in conjuncts(op.condition):
            pair = _equi_pair(conjunct, left_cids, right_cids)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)

    build_side = "right"
    early_out = False
    if equi and op.join_type not in (ops.JoinType.SEMI, ops.JoinType.ANTI):
        try:
            est_left = estimator.estimate(op.left)
            est_right = estimator.estimate(op.right)
        except Exception:
            est_left = est_right = 1000.0
        if est_left < est_right:
            build_side = "left"
            # A declared at-most-one augmentation side (the paper's UAJ
            # cardinality contract) bounds matches to one per build key:
            # the probe stream can stop once every key has matched.
            declared = op.declared
            if declared is not None and declared.right in (
                CardinalityBound.ONE, CardinalityBound.EXACT_ONE
            ):
                early_out = True

    out_cids = frozenset(c.cid for c in op.output) & (used | condition_refs)
    join_left_cids = [c.cid for c in op.left.output if c.cid in out_cids]
    if op.join_type in (ops.JoinType.SEMI, ops.JoinType.ANTI):
        join_right_cids: list[int] = []
    else:
        join_right_cids = [c.cid for c in op.right.output if c.cid in out_cids]
    return HashJoinExec(
        op, left, right,
        equi=equi, residual=residual, build_side=build_side,
        left_cids=join_left_cids, right_cids=join_right_cids,
        early_out=early_out,
    )

"""Table statistics for cost estimation.

SAP HANA's cost-based phase "relies on data statistics to compute the cost
of alternative query execution plans" (§2.2).  We provide the equivalents:
per-table row counts and per-column distinct-count estimates, computed from
the column store (the dictionary of the main fragment gives exact distinct
counts for merged data; the delta is estimated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.catalog import Catalog


@dataclass
class TableStats:
    """Statistics snapshot for one table."""

    name: str
    row_count: int
    distinct: dict[str, int] = field(default_factory=dict)

    def ndv(self, column: str) -> int:
        """Number of distinct values (>= 1 so selectivities stay finite)."""
        return max(self.distinct.get(column.lower(), self.row_count or 1), 1)


class StatisticsProvider:
    """Computes and caches :class:`TableStats` from storage."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._cache: dict[str, tuple[int, TableStats]] = {}

    def table_stats(self, name: str) -> TableStats:
        lowered = name.lower()
        table = self._catalog.table(lowered)
        version = len(table)
        cached = self._cache.get(lowered)
        if cached is not None and cached[0] == version:
            return cached[1]
        stats = TableStats(
            lowered,
            row_count=table.estimated_row_count(),
            distinct={
                col.name: table.estimated_distinct(col.name)
                for col in table.schema.columns
            },
        )
        self._cache[lowered] = (version, stats)
        return stats

    def invalidate(self, name: str | None = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name.lower(), None)

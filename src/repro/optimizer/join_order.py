"""Cost-based join ordering (greedy, left-deep).

After the heuristic rewrites, maximal regions of INNER equi-joins are
flattened into (relations, conjuncts) and rebuilt left-deep: start from the
smallest estimated relation, repeatedly extend with the connected relation
minimizing the estimated intermediate size (cross products only when
forced).  Mirrors the paper's description of SAP HANA's pipeline: heuristic
rewriting first, then a cost-based phase over alternatives (§2.2).

Safety rules:

- only INNER joins participate; LEFT OUTER / case joins are region borders;
- joins carrying a declared cardinality (§7.3) are region borders too — the
  declaration is positional evidence tied to that join's sides;
- the region's original output column order is restored by an identity
  projection, so parents (which reference cids) are unaffected either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.expr import Expr, make_and, referenced_cids
from ..algebra.ops import Join, JoinType, LogicalOp, Project
from ..algebra.properties import conjuncts
from .cost import CardinalityEstimator
from .stats import StatisticsProvider


@dataclass
class _Region:
    relations: list[LogicalOp]
    predicates: list[Expr]


def reorder_joins(plan: LogicalOp, catalog) -> LogicalOp:
    estimator = CardinalityEstimator(StatisticsProvider(catalog))
    return _rewrite(plan, estimator)


def _rewrite(op: LogicalOp, estimator: CardinalityEstimator) -> LogicalOp:
    if _is_reorderable(op):
        region = _flatten(op, estimator)
        if len(region.relations) > 2:
            rebuilt = _greedy_build(region, estimator)
            if rebuilt is not None:
                return _restore_output(op, rebuilt)
    children = [_rewrite(child, estimator) for child in op.children]
    return op.with_children(children)


def _is_reorderable(op: LogicalOp) -> bool:
    return (
        isinstance(op, Join)
        and op.join_type is JoinType.INNER
        and op.declared is None
        and not op.case_join
        and op.condition is not None
    )


def _flatten(op: LogicalOp, estimator: CardinalityEstimator) -> _Region:
    relations: list[LogicalOp] = []
    predicates: list[Expr] = []

    def visit(node: LogicalOp) -> None:
        if _is_reorderable(node):
            assert isinstance(node, Join)
            visit(node.left)
            visit(node.right)
            predicates.extend(conjuncts(node.condition))
        else:
            relations.append(_rewrite(node, estimator))

    visit(op)
    return _Region(relations, predicates)


def _greedy_build(region: _Region, estimator: CardinalityEstimator) -> LogicalOp | None:
    remaining = list(region.relations)
    pending = list(region.predicates)
    sizes = {id(r): estimator.estimate(r) for r in remaining}

    def applicable(predicates: list[Expr], available: frozenset[int]):
        ready, later = [], []
        for predicate in predicates:
            (ready if referenced_cids(predicate) <= available else later).append(predicate)
        return ready, later

    # Seed: the smallest relation.
    current = min(remaining, key=lambda r: sizes[id(r)])
    remaining.remove(current)
    available = frozenset(current.output_cids)

    while remaining:
        best = None
        best_size = None
        best_ready: list[Expr] = []
        for candidate in remaining:
            candidate_cols = frozenset(candidate.output_cids)
            ready, _ = applicable(pending, available | candidate_cols)
            connected = any(
                referenced_cids(p) & available and referenced_cids(p) & candidate_cols
                for p in ready
            )
            # Estimate joined size crudely: product shrunk by join predicates.
            size = sizes[id(candidate)]
            estimated = (
                estimator.estimate(current) * size
            )
            if connected:
                estimated = estimated / max(size, 1.0)  # roughly |current|
            if not connected:
                estimated *= 10  # discourage cross products
            if best is None or estimated < best_size:
                best = candidate
                best_size = estimated
                best_ready = ready
        assert best is not None
        remaining.remove(best)
        condition = make_and(best_ready)
        for predicate in best_ready:
            pending.remove(predicate)
        current = Join(JoinType.INNER, current, best, condition)
        available = frozenset(current.output_cids)

    if pending:
        # Predicates referencing nothing available (shouldn't happen) — bail.
        leftovers = [p for p in pending if not referenced_cids(p) <= available]
        if leftovers:
            return None
        from ..algebra.ops import Filter

        current = Filter(current, make_and(pending))  # type: ignore[arg-type]
    return current


def _restore_output(original: LogicalOp, rebuilt: LogicalOp) -> LogicalOp:
    """Identity projection restoring the original column order."""
    items = tuple((col, col.as_ref()) for col in original.output)
    return Project(rebuilt, items)

"""Cardinality estimation over logical plans.

Textbook heuristics (System R lineage), sufficient to order joins sensibly:

- equality on a column: selectivity 1/ndv;
- range comparison: 1/3; LIKE: 1/4; IS NULL: 1/10;
- AND multiplies, OR adds (capped), NOT complements;
- equi-join: ``|L| * |R| / max(ndv(left key), ndv(right key))``;
- left outer join: at least ``|L|``;
- GROUP BY: product of key ndvs, capped by the input;
- DISTINCT: 60% of input; LIMIT: min(input, n).
"""

from __future__ import annotations

from ..algebra.expr import Call, ColRef, Const, Expr
from ..algebra.ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    OneRow,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from ..algebra.properties import conjuncts, equi_join_cids
from .stats import StatisticsProvider

DEFAULT_RANGE_SELECTIVITY = 1 / 3
DEFAULT_LIKE_SELECTIVITY = 1 / 4
DEFAULT_NULL_SELECTIVITY = 1 / 10
DEFAULT_EQ_SELECTIVITY = 1 / 10


class CardinalityEstimator:
    """Estimates output cardinalities bottom-up, tracking column ndv."""

    def __init__(self, stats: StatisticsProvider):
        self._stats = stats
        # cid -> estimated distinct count, filled while estimating
        self._ndv: dict[int, float] = {}

    # -- public API ------------------------------------------------------------

    def estimate(self, op: LogicalOp) -> float:
        if isinstance(op, Scan):
            stats = self._stats.table_stats(op.schema.name)
            for col in op.output:
                self._ndv[col.cid] = stats.ndv(col.name)
            return float(max(stats.row_count, 1))
        if isinstance(op, Filter):
            child = self.estimate(op.child)
            return max(child * self.selectivity(op.predicate), 0.1)
        if isinstance(op, Project):
            child = self.estimate(op.child)
            for col, expr in op.items:
                if isinstance(expr, ColRef):
                    self._ndv[col.cid] = self._ndv.get(expr.cid, child)
                elif isinstance(expr, Const):
                    self._ndv[col.cid] = 1
            return child
        if isinstance(op, Join):
            return self._estimate_join(op)
        if isinstance(op, Aggregate):
            child = self.estimate(op.child)
            if not op.group_cids:
                return 1.0
            groups = 1.0
            for cid in op.group_cids:
                groups *= self._ndv.get(cid, max(child / 10, 1))
            return max(min(groups, child), 1.0)
        if isinstance(op, UnionAll):
            total = sum(self.estimate(child) for child in op.inputs)
            for position, col in enumerate(op.output):
                self._ndv[col.cid] = sum(
                    self._ndv.get(op.child_maps[i][position], 10)
                    for i in range(len(op.inputs))
                )
            return total
        if isinstance(op, Distinct):
            return max(self.estimate(op.child) * 0.6, 1.0)
        if isinstance(op, Sort):
            return self.estimate(op.child)
        if isinstance(op, Limit):
            child = self.estimate(op.child)
            if op.limit is None:
                return child
            return float(min(child, op.limit))
        if isinstance(op, OneRow):
            return 1.0
        return 1000.0  # unknown operator: neutral guess

    # -- predicates ---------------------------------------------------------------

    def selectivity(self, predicate: Expr | None) -> float:
        if predicate is None:
            return 1.0
        result = 1.0
        for conjunct in conjuncts(predicate):
            result *= self._conjunct_selectivity(conjunct)
        return max(min(result, 1.0), 1e-6)

    def _conjunct_selectivity(self, expr: Expr) -> float:
        if isinstance(expr, Const):
            if expr.value is True:
                return 1.0
            return 0.0 if expr.value in (False, None) else 1.0
        if not isinstance(expr, Call):
            return 0.5
        if expr.op == "OR":
            parts = [self._conjunct_selectivity(a) for a in expr.args]
            return min(sum(parts), 1.0)
        if expr.op == "NOT":
            return max(1.0 - self._conjunct_selectivity(expr.args[0]), 0.0)
        if expr.op == "=":
            column = self._single_column(expr)
            if column is not None:
                return 1.0 / self._ndv.get(column, 1 / DEFAULT_EQ_SELECTIVITY)
            return DEFAULT_EQ_SELECTIVITY
        if expr.op in ("<", "<=", ">", ">="):
            return DEFAULT_RANGE_SELECTIVITY
        if expr.op == "LIKE":
            return DEFAULT_LIKE_SELECTIVITY
        if expr.op in ("ISNULL",):
            return DEFAULT_NULL_SELECTIVITY
        if expr.op in ("ISNOTNULL",):
            return 1.0 - DEFAULT_NULL_SELECTIVITY
        if expr.op == "IN":
            column = None
            if isinstance(expr.args[0], ColRef):
                column = expr.args[0].cid
            per_item = (
                1.0 / self._ndv.get(column, 1 / DEFAULT_EQ_SELECTIVITY)
                if column is not None
                else DEFAULT_EQ_SELECTIVITY
            )
            return min(per_item * (len(expr.args) - 1), 1.0)
        if expr.op == "<>":
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return 0.5

    @staticmethod
    def _single_column(expr: Call) -> int | None:
        a, b = expr.args
        if isinstance(a, ColRef) and isinstance(b, Const):
            return a.cid
        if isinstance(b, ColRef) and isinstance(a, Const):
            return b.cid
        return None

    # -- joins ------------------------------------------------------------------------

    def _estimate_join(self, op: Join) -> float:
        left = self.estimate(op.left)
        right = self.estimate(op.right)
        if op.join_type in (JoinType.SEMI, JoinType.ANTI):
            return max(left * 0.5, 0.1)
        if op.condition is None:
            inner = left * right
        else:
            left_equi, right_equi = equi_join_cids(op)
            if left_equi:
                divisor = 1.0
                for lcid, rcid in zip(left_equi, right_equi):
                    divisor *= max(
                        self._ndv.get(lcid, 10), self._ndv.get(rcid, 10)
                    )
                inner = left * right / max(divisor, 1.0)
            else:
                inner = left * right * self.selectivity(op.condition)
        if op.join_type is JoinType.LEFT_OUTER:
            return max(inner, left)
        return max(inner, 0.1)


def estimate_cardinality(op: LogicalOp, catalog) -> float:
    """Convenience one-shot estimate for a plan against a catalog."""
    return CardinalityEstimator(StatisticsProvider(catalog)).estimate(op)

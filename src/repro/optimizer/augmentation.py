"""Augmentation-join classification (paper §4.2).

A join ``L ⟕ R`` / ``L ⋈ R`` is an **augmentation join** when it neither
filters nor duplicates rows of ``L``:

- AJ 1 (inner, 1..m : 1..1): a match is *guaranteed and unique* — via a
  foreign-key constraint into the augmenter's key (AJ 1a), an inner
  equi-self-join on key (AJ 1b), or a declared ``... TO EXACT ONE``
  cardinality (§7.3);
- AJ 2 (left outer, 1..m : 0..1): a match is *at most unique* — via a
  unique key on the augmenter's join columns (AJ 2a, with the 2a-1/2a-2/2a-3
  uniqueness sources handled by property derivation), a declared ``... TO
  ONE`` cardinality, or a provably empty augmenter (AJ 2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.expr import ColRef, Const, Expr, conjuncts
from ..algebra.ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from ..algebra.properties import (
    CAP_UNIQUE_FROM_DECLARED,
    DerivationContext,
    equi_join_cids,
    residual_conjuncts,
)
from ..sql.ast import CardinalityBound
from .profiles import CAP_UAJ_INNER


@dataclass(frozen=True)
class AugmentationInfo:
    """Evidence that a join is purely augmentative."""

    kind: str  # "left_outer_unique" | "declared" | "fk" | "self_join" | "empty"


def is_augmentation_join(join: Join, ctx: DerivationContext) -> AugmentationInfo | None:
    """Classify ``join``; None when augmentation cannot be proven."""
    if join.join_type is JoinType.LEFT_OUTER:
        return _classify_left_outer(join, ctx)
    if join.join_type is JoinType.INNER:
        return _classify_inner(join, ctx)
    return None  # SEMI/ANTI filter by construction: never augmentation


def _declared_right(join: Join, ctx: DerivationContext) -> CardinalityBound | None:
    if join.declared is None or not ctx.has(CAP_UNIQUE_FROM_DECLARED):
        return None
    return join.declared.right


def _classify_left_outer(join: Join, ctx: DerivationContext) -> AugmentationInfo | None:
    declared = _declared_right(join, ctx)
    if declared in (CardinalityBound.ONE, CardinalityBound.EXACT_ONE):
        return AugmentationInfo("declared")
    if is_provably_empty(join.right):
        return AugmentationInfo("empty")
    _, right_equi = equi_join_cids(join)
    if not right_equi:
        return None
    right_keys = ctx.unique_keys(join.right)
    if any(key <= frozenset(right_equi) for key in right_keys):
        # Residual (non-equi) conjuncts only reduce matches; with uniqueness
        # already established, at most one match survives — still AJ 2.
        return AugmentationInfo("left_outer_unique")
    return None


def _classify_inner(join: Join, ctx: DerivationContext) -> AugmentationInfo | None:
    declared = _declared_right(join, ctx)
    if declared is CardinalityBound.EXACT_ONE:
        return AugmentationInfo("declared")
    if not ctx.has(CAP_UAJ_INNER):
        return None
    if residual_conjuncts(join):
        return None  # residual predicates can break the exactly-one lower bound
    left_equi, right_equi = equi_join_cids(join)
    if not right_equi:
        return None
    right_keys = ctx.unique_keys(join.right)
    if not any(key <= frozenset(right_equi) for key in right_keys):
        return None
    # Uniqueness holds; now establish the guaranteed match (lower bound 1).
    view = augmenter_view(join.right)
    if view is None or view.filters:
        return None  # a filtered augmenter can miss matches
    prov = ctx.provenance(join.left)
    left_sources: list[tuple[str, str, bool, bool]] = []  # (table, column, nullable, outer)
    for cid in left_equi:
        p = prov.get(cid)
        if p is None:
            return None
        base_nullable = p.scan.schema.column(p.column).nullable
        left_sources.append((p.scan.schema.name, p.column, base_nullable, p.outer_nulled))
    if any(nullable or outer for _, _, nullable, outer in left_sources):
        return None  # a NULL key would find no match and filter the row
    right_columns = [view.base_column(cid) for cid in right_equi]
    if any(c is None for c in right_columns):
        return None
    # AJ 1b: inner equi-self-join on the augmenter table's unique key.
    same_table = all(t == view.scan.schema.name for t, _, _, _ in left_sources)
    columns_match = [c for c in right_columns] == [c for _, c, _, _ in left_sources]
    if same_table and columns_match:
        return AugmentationInfo("self_join")
    # AJ 1a: a foreign key from the anchor columns to the augmenter's key.
    by_table: dict[str, list[tuple[str, str]]] = {}
    for (table, column, _, _), right_col in zip(left_sources, right_columns):
        by_table.setdefault(table, []).append((column, right_col))
    if len(by_table) == 1:
        ((table, pairs),) = by_table.items()
        left_cols = tuple(c for c, _ in pairs)
        right_cols = tuple(c for _, c in pairs)
        for scan in join.left.walk():
            if isinstance(scan, Scan) and scan.schema.name == table:
                for fk in scan.schema.foreign_keys:
                    if (
                        fk.ref_table == view.scan.schema.name
                        and tuple(sorted(zip(fk.columns, fk.ref_columns)))
                        == tuple(sorted(zip(left_cols, right_cols)))
                    ):
                        return AugmentationInfo("fk")
                break
    return None


# ---------------------------------------------------------------------------
# augmenter structural view
# ---------------------------------------------------------------------------


@dataclass
class AugmenterView:
    """A see-through view of an augmenter subtree: Projects and Filters
    peeled down to a base Scan, with a pass-through column map."""

    scan: Scan
    # augmenter-output cid -> base column name, for plain pass-throughs
    passthrough: dict[int, str] = field(default_factory=dict)
    filters: list[Expr] = field(default_factory=list)

    def base_column(self, cid: int) -> str | None:
        return self.passthrough.get(cid)


def augmenter_view(op: LogicalOp) -> AugmenterView | None:
    """Peel Project/Filter layers down to a Scan; None for anything else."""
    filters: list[Expr] = []
    # mapping: current-level cid -> expression over the next level down
    layers: list[dict[int, Expr]] = []
    node = op
    while True:
        if isinstance(node, Scan):
            scan = node
            break
        if isinstance(node, Filter):
            filters.extend(conjuncts(node.predicate))
            node = node.child
            continue
        if isinstance(node, Project):
            layers.append({col.cid: expr for col, expr in node.items})
            node = node.child
            continue
        return None
    scan_cols = {col.cid: col.name for col in scan.output}

    def resolve(cid: int, level: int) -> str | None:
        """Resolve a cid produced at projection ``level`` (0 = op output)
        down to a scan column name, following pass-through ColRefs."""
        if level == len(layers):
            return scan_cols.get(cid)
        expr = layers[level].get(cid)
        if isinstance(expr, ColRef):
            return resolve(expr.cid, level + 1)
        return None

    passthrough: dict[int, str] = {}
    for col in op.output:
        name = resolve(col.cid, 0)
        if name is not None:
            passthrough[col.cid] = name
    return AugmenterView(scan, passthrough, filters)


def is_provably_empty(op: LogicalOp) -> bool:
    """Conservative emptiness proof (AJ 2b: ``R ⟕ ∅``)."""
    if isinstance(op, Filter):
        predicate = op.predicate
        if isinstance(predicate, Const) and predicate.value in (False, None):
            return True
        return is_provably_empty(op.child)
    if isinstance(op, (Project, Sort, Distinct)):
        return is_provably_empty(op.child)
    if isinstance(op, Limit):
        if op.limit == 0:
            return True
        return is_provably_empty(op.child)
    if isinstance(op, Join):
        if op.join_type is JoinType.INNER:
            return is_provably_empty(op.left) or is_provably_empty(op.right)
        return is_provably_empty(op.left)
    if isinstance(op, UnionAll):
        return all(is_provably_empty(child) for child in op.inputs)
    if isinstance(op, Aggregate):
        return bool(op.group_cids) and is_provably_empty(op.child)
    return False

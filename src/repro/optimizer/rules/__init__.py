"""Rewrite-rule families, one module per paper section:

- :mod:`simplify_joins` — projection pruning + UAJ (§4) + ASJ (§5) + the
  Union All interplay (§6), in one top-down required-columns pass;
- :mod:`cleanup` — constant folding, operator collapsing, distinct
  elimination;
- :mod:`filter_pushdown` — standard predicate pushdown;
- :mod:`limit_pushdown` — limit across augmentation joins (§4.4);
- :mod:`agg_pushdown` — aggregation pushdown across decimal rounding
  (§7.1) and through augmentation joins.
"""

"""Limit pushdown across augmentation joins (paper §4.4, Fig. 6, Table 2).

Paging queries (``select * from V limit 100 offset 1``) dominate UI data
access in S/4HANA.  Because an augmentation join neither filters nor
duplicates anchor rows, a LIMIT above it can move to the anchor side —
which, in turn, shrinks every operator below (e.g. the probe side of hash
joins).  SAP HANA is the only evaluated system implementing this (Table 2).

Rules (top-down, to fixpoint within the traversal):

- ``Limit(Project(x))``       -> ``Project(Limit(x))``           (always)
- ``Limit(Sort(Project(x)))`` -> ``Project(Limit(Sort'(x)))``    (always) when
  every sort key is a pass-through column of the projection (keys remapped
  to the child's cids) — view stacks interpose a Project between ORDER BY
  and the augmentation join, which otherwise hides every top-N opportunity
- ``Limit(Join_aug(L, R))``   -> ``Join_aug(Limit(L), R)``       (cap: limit_pushdown_aj)
- ``Limit(Sort(Join_aug))``   -> ``Join_aug(Limit(Sort(L)), R)`` when all
  sort keys come from the anchor (top-N pushdown)
- ``Limit(UnionAll(...))``    -> children pre-limited to limit+offset, outer
  Limit retained (cap: limit_pushdown_union)
"""

from __future__ import annotations

from ...algebra.expr import ColRef
from ...algebra.ops import Join, Limit, LogicalOp, Project, Sort, SortKey, UnionAll
from ..augmentation import is_augmentation_join
from ..profiles import CAP_LIMIT_PUSHDOWN_AJ, CAP_LIMIT_PUSHDOWN_UNION
from .simplify_joins import SimplifyContext


def push_limits(plan: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    return _push(plan, sctx)


def _push(op: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    if isinstance(op, Limit):
        rewritten = _push_one_limit(op, sctx)
        if rewritten is not None:
            return _push(rewritten, sctx)
    children = [_push(child, sctx) for child in op.children]
    return op.with_children(children)


def _push_one_limit(op: Limit, sctx: SimplifyContext) -> LogicalOp | None:
    child = op.child

    if isinstance(child, Project):
        return Project(Limit(child.child, op.limit, op.offset), child.items)

    if isinstance(child, Sort) and isinstance(child.child, Project):
        project = child.child
        mapped = _keys_through_project(child.keys, project)
        if mapped is not None:
            return Project(
                Limit(Sort(project.child, mapped), op.limit, op.offset),
                project.items,
            )

    if isinstance(child, Join) and sctx.has(CAP_LIMIT_PUSHDOWN_AJ):
        if is_augmentation_join(child, sctx.derivation) is not None:
            sctx.trace.rewrite("limit-pushdown-aj", limit=op.limit, offset=op.offset)
            pushed = Limit(child.left, op.limit, op.offset)
            return child.with_children([pushed, child.right])

    if (
        isinstance(child, Sort)
        and isinstance(child.child, Join)
        and sctx.has(CAP_LIMIT_PUSHDOWN_AJ)
    ):
        join = child.child
        anchor_cids = join.left.output_cids
        if all(k.cid in anchor_cids for k in child.keys) and (
            is_augmentation_join(join, sctx.derivation) is not None
        ):
            sctx.trace.rewrite("limit-pushdown-topn", limit=op.limit, offset=op.offset)
            pushed = Limit(Sort(join.left, child.keys), op.limit, op.offset)
            return join.with_children([pushed, join.right])

    if isinstance(child, UnionAll) and sctx.has(CAP_LIMIT_PUSHDOWN_UNION):
        if op.limit is None:
            return None
        bound = op.limit + op.offset
        new_children = []
        changed = False
        for grandchild in child.inputs:
            if isinstance(grandchild, Limit) and (
                grandchild.offset == 0
                and grandchild.limit is not None
                and grandchild.limit <= bound
            ):
                new_children.append(grandchild)
            else:
                new_children.append(Limit(grandchild, bound, 0))
                changed = True
        if not changed:
            return None
        sctx.trace.rewrite("limit-pushdown-union", branches=len(child.inputs))
        return Limit(child.with_children(new_children), op.limit, op.offset)

    return None


def _keys_through_project(
    keys: tuple[SortKey, ...], project: Project
) -> tuple[SortKey, ...] | None:
    """Remap sort keys to the projection's input, or None if any key is a
    computed expression (sorting below would observe different values)."""
    passthrough = {
        col.cid: expr.cid
        for col, expr in project.items
        if isinstance(expr, ColRef)
    }
    mapped = []
    for key in keys:
        cid = passthrough.get(key.cid)
        if cid is None:
            return None
        mapped.append(SortKey(cid, key.ascending))
    return tuple(mapped)

"""Standard predicate pushdown.

Not itself a contribution of the paper, but required context: VDM queries
carry user filters and injected DAC filters at the very top of a deep view
stack (Fig. 3), and the paper's Fig. 4 plan only emerges when those
predicates migrate down to the scans they restrict.

Safety rules implemented:

- through Project: substitute the projection expressions into the conjunct;
- into Join: anchor-side conjuncts go left; right-side conjuncts go right
  only for INNER joins (pushing into the nullable side of a left outer join
  would turn filtered rows into NULL-extended rows);
- through UnionAll: replicate per child with the child's column ids;
- through Sort / Distinct: order/duplicates are unaffected by filtering first;
- through Aggregate: only conjuncts over grouping keys;
- never through Limit (it would change which rows are counted).
"""

from __future__ import annotations

from ...algebra.expr import ColRef, Expr, make_and, referenced_cids, substitute_cids
from ...algebra.ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    Project,
    Sort,
    UnionAll,
)


def push_filters(plan: LogicalOp, trace=None) -> LogicalOp:
    from ...observability.trace import NULL_TRACE

    return _push(plan, [], NULL_TRACE if trace is None else trace)


def _push(op: LogicalOp, pending: list[Expr], trace) -> LogicalOp:
    from ...algebra.expr import conjuncts

    if isinstance(op, Filter):
        return _push(op.child, pending + conjuncts(op.predicate), trace)

    if isinstance(op, Project):
        mapping = {col.cid: expr for col, expr in op.items}
        pushable = []
        stuck = []
        for conjunct in pending:
            refs = referenced_cids(conjunct)
            if refs <= mapping.keys() and all(
                _cheap(mapping[cid]) for cid in refs
            ):
                pushable.append(substitute_cids(conjunct, mapping))
            else:
                stuck.append(conjunct)
        result: LogicalOp = Project(_push(op.child, pushable, trace), op.items)
        return _wrap(result, stuck)

    if isinstance(op, Join):
        left_cids = op.left.output_cids
        right_cids = op.right.output_cids
        to_left, to_right, stuck = [], [], []
        for conjunct in pending:
            refs = referenced_cids(conjunct)
            if refs <= left_cids:
                to_left.append(conjunct)
            elif refs <= right_cids and op.join_type is JoinType.INNER:
                to_right.append(conjunct)
            else:
                stuck.append(conjunct)
        if to_left or to_right:
            trace.rewrite("filter-pushdown-join", moved=len(to_left) + len(to_right))
        new_join = op.with_children(
            [_push(op.left, to_left, trace), _push(op.right, to_right, trace)]
        )
        return _wrap(new_join, stuck)

    if isinstance(op, UnionAll):
        position_of = {col.cid: pos for pos, col in enumerate(op.output)}
        pushable, stuck = [], []
        for conjunct in pending:
            if referenced_cids(conjunct) <= position_of.keys():
                pushable.append(conjunct)
            else:
                stuck.append(conjunct)
        if pushable:
            trace.rewrite(
                "filter-pushdown-union",
                moved=len(pushable), branches=len(op.inputs),
            )
        new_children = []
        for child, mapping in zip(op.inputs, op.child_maps):
            child_pending = []
            for conjunct in pushable:
                substitution = {}
                for cid in referenced_cids(conjunct):
                    child_cid = mapping[position_of[cid]]
                    child_col = child.find_col(child_cid)
                    substitution[cid] = ColRef(
                        child_cid, child_col.name, child_col.data_type, child_col.nullable
                    )
                child_pending.append(substitute_cids(conjunct, substitution))
            new_children.append(_push(child, child_pending, trace))
        return _wrap(op.with_children(new_children), stuck)

    if isinstance(op, (Sort, Distinct)):
        return op.with_children([_push(op.children[0], pending, trace)])

    if isinstance(op, Aggregate):
        keys = frozenset(op.group_cids)
        pushable, stuck = [], []
        for conjunct in pending:
            (pushable if referenced_cids(conjunct) <= keys else stuck).append(conjunct)
        new_agg = op.with_children([_push(op.child, pushable, trace)])
        return _wrap(new_agg, stuck)

    if isinstance(op, Limit):
        return _wrap(op.with_children([_push(op.child, [], trace)]), pending)

    # Scan and anything else: stop here.
    children = [_push(child, [], trace) for child in op.children]
    return _wrap(op.with_children(children), pending)


def _wrap(op: LogicalOp, predicates: list[Expr]) -> LogicalOp:
    combined = make_and(predicates)
    return op if combined is None else Filter(op, combined)


def _cheap(expr: Expr) -> bool:
    """Only substitute inexpensive projection expressions into predicates
    (a duplicated heavy expression could regress the plan)."""
    from ...algebra.expr import Const

    return isinstance(expr, (ColRef, Const))

"""The core simplification pass: pruning, UAJ elimination, ASJ rewiring.

One top-down traversal carries the set of *required* column ids.  At each
join it decides, in order:

1. **AJ 2b** — left outer join with a provably empty augmenter: replace the
   augmenter's columns with NULL literals (paper §4.2, case AJ 2b);
2. **ASJ** — self-join on key whose augmenter fields can be rewired into the
   anchor (paper §5.3, Fig. 10a-c), including the Union All variants of
   §6.3 (Fig. 13a: union in the anchor; Fig. 13b: union on both sides, via
   the case join's declared intent or the structural heuristic);
3. **UAJ** — the augmenter contributes no required columns and the join is
   purely augmentative: drop it (paper §4.3, Fig. 5).

All rewrites preserve the cids of surviving columns, so parents never need
patching; replaced augmenter columns are re-defined under the original cid
by a compensating Project.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...algebra.expr import Call, ColRef, Const, Expr, conjuncts, next_cid, referenced_cids
from ...algebra.ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    OutputCol,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from ...algebra.properties import DerivationContext
from ...errors import OptimizerError
from ...observability.trace import NULL_TRACE
from ..augmentation import (
    AugmenterView,
    augmenter_view,
    is_augmentation_join,
    is_provably_empty,
)
from ..profiles import (
    CAP_ASJ,
    CAP_ASJ_UNION_ANCHOR,
    CAP_ASJ_UNION_HEURISTIC,
    CAP_CASE_JOIN,
    CAP_PRUNE,
    CAP_UAJ,
    CAP_UAJ_EMPTY,
    OptimizerProfile,
)


class SimplifyContext:
    """Per-optimization state: profile + property derivation caches + the
    rewrite trace (default: the zero-cost null trace)."""

    def __init__(self, profile: OptimizerProfile, trace=None):
        self.profile = profile
        self.derivation = DerivationContext(profile.caps)
        self.trace = NULL_TRACE if trace is None else trace

    def has(self, cap: str) -> bool:
        return self.profile.has(cap)


# The paper's case taxonomy (§4.2/§4.3) keyed by the augmentation-evidence
# kind derived in :mod:`repro.optimizer.augmentation`.
UAJ_CASE_NAMES = {
    "fk": "AJ 1a",                 # FK into the augmenter's key (inner)
    "self_join": "AJ 1b",          # inner equi-self-join on key
    "left_outer_unique": "AJ 2a",  # unique augmenter join columns (left outer)
    "declared": "AJ declared",     # TO [EXACT] ONE declared cardinality (§7.3)
    "empty": "AJ 2b",              # provably empty augmenter
}


def simplify_plan(plan: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    required = frozenset(col.cid for col in plan.output)
    return _simplify(plan, required, sctx)


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def _simplify(op: LogicalOp, required: frozenset[int], sctx: SimplifyContext) -> LogicalOp:
    if not op.children and not isinstance(op, Scan):
        return op  # leaf sources (OneRow) pass through
    if isinstance(op, Scan):
        return op
    if isinstance(op, Project):
        return _simplify_project(op, required, sctx)
    if isinstance(op, Filter):
        child_required = required | referenced_cids(op.predicate)
        return Filter(_simplify(op.child, child_required, sctx), op.predicate)
    if isinstance(op, Sort):
        child_required = required | frozenset(k.cid for k in op.keys)
        return Sort(_simplify(op.child, child_required, sctx), op.keys)
    if isinstance(op, Limit):
        return Limit(_simplify(op.child, required, sctx), op.limit, op.offset)
    if isinstance(op, Distinct):
        # DISTINCT semantics depend on every output column: no pruning below.
        child_required = frozenset(op.child.output_cids)
        return Distinct(_simplify(op.child, child_required, sctx))
    if isinstance(op, Aggregate):
        return _simplify_aggregate(op, required, sctx)
    if isinstance(op, UnionAll):
        return _simplify_union(op, required, sctx)
    if isinstance(op, Join):
        return _simplify_join(op, required, sctx)
    raise OptimizerError(f"cannot simplify {type(op).__name__}")


def _simplify_project(op: Project, required: frozenset[int], sctx: SimplifyContext) -> Project:
    if sctx.has(CAP_PRUNE):
        items = tuple(item for item in op.items if item[0].cid in required)
    else:
        items = op.items
    child_required = frozenset()
    for _, expr in items:
        child_required |= referenced_cids(expr)
    return Project(_simplify(op.child, child_required, sctx), items)


def _simplify_aggregate(op: Aggregate, required: frozenset[int], sctx: SimplifyContext) -> Aggregate:
    if sctx.has(CAP_PRUNE):
        aggs = tuple(item for item in op.aggs if item[0].cid in required)
        if not aggs and not op.group_cids and op.aggs:
            aggs = op.aggs[:1]  # keep cardinality semantics of a global aggregate
    else:
        aggs = op.aggs
    child_required = frozenset(op.group_cids)
    for _, call in aggs:
        if call.arg is not None:
            child_required |= referenced_cids(call.arg)
    return Aggregate(_simplify(op.child, child_required, sctx), op.group_cids, aggs)


def _simplify_union(op: UnionAll, required: frozenset[int], sctx: SimplifyContext) -> UnionAll:
    if sctx.has(CAP_PRUNE):
        positions = [pos for pos, col in enumerate(op.output) if col.cid in required]
    else:
        positions = list(range(len(op.output)))
    new_children = []
    new_maps = []
    for child, mapping in zip(op.inputs, op.child_maps):
        child_required = frozenset(mapping[pos] for pos in positions)
        new_children.append(_simplify(child, child_required, sctx))
        new_maps.append(tuple(mapping[pos] for pos in positions))
    return UnionAll(
        tuple(new_children),
        tuple(op.output[pos] for pos in positions),
        tuple(new_maps),
    )


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def _simplify_join(op: Join, required: frozenset[int], sctx: SimplifyContext) -> LogicalOp:
    left_cids = op.left.output_cids
    right_cids = op.right.output_cids
    right_used = required & right_cids

    # AJ 2b: left outer join with a provably empty augmenter — every anchor
    # row is NULL-augmented, so the augmenter columns are literal NULLs.
    if (
        op.join_type is JoinType.LEFT_OUTER
        and sctx.has(CAP_UAJ_EMPTY)
        and is_provably_empty(op.right)
    ):
        sctx.trace.rewrite("AJ 2b", augmenter=type(op.right).__name__)
        left = _simplify(op.left, required & left_cids, sctx)
        items = [(col, col.as_ref()) for col in left.output if col.cid in required]
        for col in op.output:
            if col.cid in right_used:
                items.append((col, Const(None, col.data_type)))  # type: ignore[arg-type]
        return Project(left, tuple(items))

    # ASJ: removable even when augmenter fields are used (§5.2).
    if sctx.has(CAP_ASJ):
        rewritten = _try_asj(op, required, sctx)
        if rewritten is not None:
            return rewritten

    # UAJ: unused augmenter + pure augmentation -> drop the join (§4.3).
    if not right_used and sctx.has(CAP_UAJ):
        info = is_augmentation_join(op, sctx.derivation)
        if info is not None:
            case = UAJ_CASE_NAMES.get(info.kind, f"AJ {info.kind}")
            if isinstance(op.right, UnionAll):
                sctx.trace.rewrite("union-uaj", evidence=info.kind)
            else:
                sctx.trace.rewrite(case, augmenter=type(op.right).__name__)
            return _simplify(op.left, required & left_cids, sctx)

    condition_refs = referenced_cids(op.condition)
    left_required = (required | condition_refs) & left_cids
    right_required = (required | condition_refs) & right_cids
    return Join(
        op.join_type,
        _simplify(op.left, left_required, sctx),
        _simplify(op.right, right_required, sctx),
        op.condition,
        op.declared,
        op.case_join,
        op.null_aware,
    )


# ---------------------------------------------------------------------------
# ASJ machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _EquiPair:
    left: ColRef
    right: ColRef


def _plain_equi_pairs(op: Join) -> list[_EquiPair] | None:
    """All conjuncts as ColRef-to-ColRef equi pairs; None if anything else.

    ASJ removal requires the join condition to be *exactly* a key-match so
    that, for the matching row, every conjunct is automatically satisfied.
    """
    left_cids = op.left.output_cids
    right_cids = op.right.output_cids
    pairs: list[_EquiPair] = []
    for conjunct in conjuncts(op.condition):
        if not (isinstance(conjunct, Call) and conjunct.op == "=" and len(conjunct.args) == 2):
            return None
        a, b = conjunct.args
        if not (isinstance(a, ColRef) and isinstance(b, ColRef)):
            return None
        if a.cid in left_cids and b.cid in right_cids:
            pairs.append(_EquiPair(a, b))
        elif b.cid in left_cids and a.cid in right_cids:
            pairs.append(_EquiPair(b, a))
        else:
            return None
    return pairs or None


def _try_asj(op: Join, required: frozenset[int], sctx: SimplifyContext) -> LogicalOp | None:
    if op.join_type not in (JoinType.INNER, JoinType.LEFT_OUTER):
        return None
    pairs = _plain_equi_pairs(op)
    if pairs is None:
        return None
    view = augmenter_view(op.right)
    if view is not None:
        result = _try_scalar_asj(op, view, pairs, required, sctx)
        if result is not None:
            return result
        if sctx.has(CAP_ASJ_UNION_ANCHOR):
            return _try_union_anchor_asj(op, view, pairs, required, sctx)
        return None
    if isinstance(op.right, UnionAll) and (
        (op.case_join and sctx.has(CAP_CASE_JOIN)) or sctx.has(CAP_ASJ_UNION_HEURISTIC)
    ):
        return _try_union_augmenter_asj(op, pairs, required, sctx)
    return None


def _augmenter_key_ok(op: Join, pairs: list[_EquiPair], sctx: SimplifyContext) -> bool:
    """Right side must be unique on the equi columns."""
    right_equi = frozenset(p.right.cid for p in pairs)
    keys = sctx.derivation.unique_keys(op.right)
    return any(key <= right_equi for key in keys)


def _try_scalar_asj(
    op: Join,
    view: AugmenterView,
    pairs: list[_EquiPair],
    required: frozenset[int],
    sctx: SimplifyContext,
) -> LogicalOp | None:
    if not _augmenter_key_ok(op, pairs, sctx):
        return None
    d = sctx.derivation
    prov = d.provenance(op.left)

    anchor_scan: Scan | None = None
    for pair in pairs:
        base_name = view.base_column(pair.right.cid)
        if base_name is None:
            return None
        p = prov.get(pair.left.cid)
        if (
            p is None
            or p.scan.schema.name != view.scan.schema.name
            or p.column != base_name
        ):
            return None
        if op.join_type is JoinType.INNER:
            # An inner self-join filters anchor rows whose key is NULL or
            # NULL-extended; removal is only sound when that cannot happen.
            if p.outer_nulled or p.scan.schema.column(p.column).nullable:
                return None
        else:
            # Left outer: a NULL base key would be NULL-augmented for real
            # but rewired to the base row's values — unsound unless the base
            # column is NOT NULL.  outer_nulled is fine (all columns of the
            # scan are NULL together).
            if p.scan.schema.column(p.column).nullable:
                return None
        if anchor_scan is None:
            anchor_scan = p.scan
        elif anchor_scan is not p.scan:
            return None
    assert anchor_scan is not None

    # Fig 10c: the augmenter's selection must be subsumed by the anchor's.
    aug_filters = d.filters_over_scan(op.right, view.scan)
    anchor_filters = d.filters_over_scan(op.left, anchor_scan)
    if not aug_filters <= anchor_filters:
        return None

    right_used = sorted(required & op.right.output_cids)
    needed_names: dict[int, str] = {}
    for cid in right_used:
        name = view.base_column(cid)
        if name is None:
            return None
        needed_names[cid] = name

    # Rewire: expose each needed base column from the anchor scan instance.
    anchor = op.left
    exposed: dict[int, int] = {}
    for cid, name in needed_names.items():
        result = _expose_column(anchor, anchor_scan, name)
        if result is None:
            return None
        anchor, exposed_cid = result
        exposed[cid] = exposed_cid

    child_required = (required & op.left.output_cids) | frozenset(exposed.values())
    anchor = _simplify(anchor, child_required, sctx)
    items: list[tuple[OutputCol, Expr]] = [
        (col, col.as_ref()) for col in anchor.output if col.cid in required
    ]
    for cid in right_used:
        out_col = op.find_col(cid)
        source = anchor.find_col(exposed[cid])
        items.append((out_col, source.as_ref()))
    sctx.trace.rewrite(
        "ASJ", table=view.scan.schema.name, rewired_columns=len(right_used)
    )
    return Project(anchor, tuple(items))


def _expose_column(
    op: LogicalOp, scan: Scan, name: str
) -> tuple[LogicalOp, int] | None:
    """Rebuild ``op`` so that column ``name`` of ``scan`` appears in its
    output; returns the new subtree and the exposed cid.

    Projection operators are widened with a pass-through item (the paper:
    "projection operations don't block ASJ optimization because an optimizer
    can modify them to expose un-projected fields").  Aggregations, DISTINCT,
    and Union All block scalar exposure.
    """
    if op is scan:
        return op, scan.column_cid(name)
    if isinstance(op, Project):
        result = _expose_column(op.child, scan, name)
        if result is None:
            return None
        child, cid = result
        for col, expr in op.items:
            if isinstance(expr, ColRef) and expr.cid == cid:
                return Project(child, op.items), col.cid
        extra_col = child.find_col(cid)
        return Project(child, op.items + ((extra_col, extra_col.as_ref()),)), cid
    if isinstance(op, (Filter, Sort, Limit)):
        result = _expose_column(op.children[0], scan, name)
        if result is None:
            return None
        child, cid = result
        return op.with_children([child]), cid
    if isinstance(op, Join):
        for index, side in enumerate(op.children):
            if _contains_scan(side, scan):
                result = _expose_column(side, scan, name)
                if result is None:
                    return None
                new_side, cid = result
                children = list(op.children)
                children[index] = new_side
                return op.with_children(children), cid
        return None
    return None  # Aggregate / Distinct / UnionAll block exposure


def _contains_scan(op: LogicalOp, scan: Scan) -> bool:
    return any(node is scan for node in op.walk())


# -- Fig 13a: Union All in the anchor ------------------------------------------


def _try_union_anchor_asj(
    op: Join,
    view: AugmenterView,
    pairs: list[_EquiPair],
    required: frozenset[int],
    sctx: SimplifyContext,
) -> LogicalOp | None:
    if not isinstance(op.left, UnionAll):
        return None
    if not _augmenter_key_ok(op, pairs, sctx):
        return None
    union = op.left
    d = sctx.derivation

    position_of = {col.cid: pos for pos, col in enumerate(union.output)}
    pair_info: list[tuple[int, str]] = []  # (union output position, base column)
    for pair in pairs:
        base_name = view.base_column(pair.right.cid)
        pos = position_of.get(pair.left.cid)
        if base_name is None or pos is None:
            return None
        pair_info.append((pos, base_name))

    # Per anchor child: locate its scan of the augmenter table and verify
    # provenance + NOT NULL + filter subsumption.
    child_scans: list[Scan] = []
    aug_filters = d.filters_over_scan(op.right, view.scan)
    for child_index, child in enumerate(union.inputs):
        mapping = union.child_maps[child_index]
        prov = d.provenance(child)
        scan_for_child: Scan | None = None
        for pos, base_name in pair_info:
            p = prov.get(mapping[pos])
            if (
                p is None
                or p.scan.schema.name != view.scan.schema.name
                or p.column != base_name
                or p.scan.schema.column(p.column).nullable
            ):
                return None
            if op.join_type is JoinType.INNER and p.outer_nulled:
                return None
            if scan_for_child is None:
                scan_for_child = p.scan
            elif scan_for_child is not p.scan:
                return None
        assert scan_for_child is not None
        if not aug_filters <= d.filters_over_scan(child, scan_for_child):
            return None
        child_scans.append(scan_for_child)

    right_used = sorted(required & op.right.output_cids)
    needed_names = []
    for cid in right_used:
        name = view.base_column(cid)
        if name is None:
            return None
        needed_names.append((cid, name))

    # Expose each needed column in every union child and widen the union.
    new_children = list(union.inputs)
    new_maps = [list(m) for m in union.child_maps]
    new_cols: list[OutputCol] = []
    exposed_for: dict[int, int] = {}  # right cid -> new union output cid
    for cid, name in needed_names:
        per_child_cids: list[int] = []
        for child_index in range(len(new_children)):
            result = _expose_column(new_children[child_index], child_scans[child_index], name)
            if result is None:
                return None
            new_children[child_index], exposed_cid = result
            per_child_cids.append(exposed_cid)
        out = op.find_col(cid)
        new_col = OutputCol(next_cid(), out.name, out.data_type, out.nullable)
        new_cols.append(new_col)
        exposed_for[cid] = new_col.cid
        for child_index in range(len(new_children)):
            new_maps[child_index].append(per_child_cids[child_index])

    widened = UnionAll(
        tuple(new_children),
        union.output + tuple(new_cols),
        tuple(tuple(m) for m in new_maps),
    )
    child_required = (required & union.output_cids) | frozenset(exposed_for.values())
    simplified = _simplify(widened, child_required, sctx)
    items: list[tuple[OutputCol, Expr]] = [
        (col, col.as_ref()) for col in simplified.output if col.cid in required
    ]
    for cid, _ in needed_names:
        out_col = op.find_col(cid)
        source = simplified.find_col(exposed_for[cid])
        items.append((out_col, source.as_ref()))
    sctx.trace.rewrite(
        "ASJ union-anchor", table=view.scan.schema.name,
        branches=len(union.inputs),
    )
    return Project(simplified, tuple(items))


# -- Fig 13b: Union All on both sides (case join / heuristic) --------------------


def _try_union_augmenter_asj(
    op: Join,
    pairs: list[_EquiPair],
    required: frozenset[int],
    sctx: SimplifyContext,
) -> LogicalOp | None:
    if not isinstance(op.right, UnionAll) or not isinstance(op.left, UnionAll):
        return None
    if op.join_type is not JoinType.LEFT_OUTER:
        return None
    if not _augmenter_key_ok(op, pairs, sctx):
        return None
    d = sctx.derivation
    aug = op.right
    anchor = op.left
    canonical_only = not (op.case_join and sctx.has(CAP_CASE_JOIN))

    # Analyze augmenter branches.  The structural heuristic (no declared
    # intent) only accepts bare canonical branches; with a case join,
    # filtered branches are allowed and verified by subsumption against the
    # matched anchor branch (paper §6.3: the declared intent justifies the
    # more expensive recognition).
    branch_views: list[AugmenterView] = []
    branch_consts: list[dict[int, object]] = []
    branch_filters: list[set[str]] = []
    for child in aug.inputs:
        if canonical_only and not _is_canonical_branch(child):
            return None
        view = augmenter_view(child)
        if view is None:
            return None
        branch_views.append(view)
        branch_consts.append(d.constants(child))
        branch_filters.append(d.filters_over_scan(child, view.scan))

    aug_position_of = {col.cid: pos for pos, col in enumerate(aug.output)}
    anchor_position_of = {col.cid: pos for pos, col in enumerate(anchor.output)}

    # Classify equi pairs into the branch-id pair and key pairs.
    bid_pair: tuple[int, int] | None = None  # (anchor position, aug position)
    key_pairs: list[tuple[int, int, list[str]]] = []  # (anchor pos, aug pos, per-branch col)
    for pair in pairs:
        anchor_pos = anchor_position_of.get(pair.left.cid)
        aug_pos = aug_position_of.get(pair.right.cid)
        if anchor_pos is None or aug_pos is None:
            return None
        branch_cids = [aug.child_maps[j][aug_pos] for j in range(len(aug.inputs))]
        if all(cid in branch_consts[j] for j, cid in enumerate(branch_cids)):
            values = [branch_consts[j][cid] for j, cid in enumerate(branch_cids)]
            if len({repr(v) for v in values}) == len(values):
                if bid_pair is not None:
                    return None
                bid_pair = (anchor_pos, aug_pos)
                continue
        per_branch_cols = []
        for j, cid in enumerate(branch_cids):
            name = branch_views[j].base_column(cid)
            if name is None:
                return None
            per_branch_cols.append(name)
        key_pairs.append((anchor_pos, aug_pos, per_branch_cols))
    if bid_pair is None or not key_pairs:
        return None

    bid_values = [
        branch_consts[j][aug.child_maps[j][bid_pair[1]]] for j in range(len(aug.inputs))
    ]
    bid_out_cid = aug.output[bid_pair[1]].cid

    # Match each anchor child to an augmenter branch by its bid constant.
    anchor_branch: list[int | None] = []
    anchor_scans: list[Scan | None] = []
    for child_index, child in enumerate(anchor.inputs):
        consts = d.constants(child)
        mapping = anchor.child_maps[child_index]
        bid_cid = mapping[bid_pair[0]]
        if bid_cid not in consts:
            return None
        value = consts[bid_cid]
        branch = next(
            (j for j, bv in enumerate(bid_values) if repr(bv) == repr(value)), None
        )
        anchor_branch.append(branch)
        if branch is None:
            anchor_scans.append(None)  # no branch matches: NULL augmentation
            continue
        prov = d.provenance(child)
        scan_for_child: Scan | None = None
        for anchor_pos, _aug_pos, per_branch_cols in key_pairs:
            p = prov.get(mapping[anchor_pos])
            expected_table = branch_views[branch].scan.schema.name
            expected_column = per_branch_cols[branch]
            if (
                p is None
                or p.scan.schema.name != expected_table
                or p.column != expected_column
                or p.scan.schema.column(p.column).nullable
            ):
                return None
            if scan_for_child is None:
                scan_for_child = p.scan
            elif scan_for_child is not p.scan:
                return None
        assert scan_for_child is not None
        # Fig. 10c generalized per branch: the matched augmenter branch's
        # selection must be subsumed by this anchor child's selection.
        if not branch_filters[branch] <= d.filters_over_scan(child, scan_for_child):
            return None
        anchor_scans.append(scan_for_child)

    # Needed augmenter columns: pass-throughs per branch (the bid column
    # rewires to the anchor's own bid column — only sound when every anchor
    # child matched a branch; an unmatched child would see a NULL bid).
    right_used = sorted(required & op.right.output_cids)
    if bid_out_cid in right_used and any(b is None for b in anchor_branch):
        return None
    needed: list[tuple[int, list[str]]] = []  # (right cid, per-branch base column)
    for cid in right_used:
        if cid == bid_out_cid:
            continue
        pos = aug_position_of[cid]
        per_branch = []
        for j in range(len(aug.inputs)):
            name = branch_views[j].base_column(aug.child_maps[j][pos])
            if name is None:
                return None
            per_branch.append(name)
        needed.append((cid, per_branch))

    new_children = list(anchor.inputs)
    new_maps = [list(m) for m in anchor.child_maps]
    new_cols: list[OutputCol] = []
    exposed_for: dict[int, int] = {}
    for cid, per_branch in needed:
        per_child_cids: list[int] = []
        for child_index in range(len(new_children)):
            branch = anchor_branch[child_index]
            if branch is None:
                # No matching branch: this child's rows are NULL-augmented.
                wrapped, null_cid = _append_null_column(
                    new_children[child_index], op.find_col(cid)
                )
                new_children[child_index] = wrapped
                per_child_cids.append(null_cid)
                continue
            result = _expose_column(
                new_children[child_index],
                anchor_scans[child_index],  # type: ignore[arg-type]
                per_branch[branch],
            )
            if result is None:
                return None
            new_children[child_index], exposed_cid = result
            per_child_cids.append(exposed_cid)
        out = op.find_col(cid)
        new_col = OutputCol(next_cid(), out.name, out.data_type, out.nullable)
        new_cols.append(new_col)
        exposed_for[cid] = new_col.cid
        for child_index in range(len(new_children)):
            new_maps[child_index].append(per_child_cids[child_index])

    widened = UnionAll(
        tuple(new_children),
        anchor.output + tuple(new_cols),
        tuple(tuple(m) for m in new_maps),
    )
    child_required = (required & anchor.output_cids) | frozenset(exposed_for.values())
    if bid_out_cid in right_used:
        child_required |= {anchor.output[bid_pair[0]].cid}
    simplified = _simplify(widened, child_required, sctx)
    items: list[tuple[OutputCol, Expr]] = [
        (col, col.as_ref()) for col in simplified.output if col.cid in required
    ]
    for cid in right_used:
        out_col = op.find_col(cid)
        if cid == bid_out_cid:
            source = simplified.find_col(anchor.output[bid_pair[0]].cid)
        else:
            source = simplified.find_col(exposed_for[cid])
        items.append((out_col, source.as_ref()))
    sctx.trace.rewrite(
        "ASJ union-augmenter",
        branches=len(aug.inputs),
        declared="case-join" if op.case_join else "heuristic",
    )
    return Project(simplified, tuple(items))


def _append_null_column(
    child: LogicalOp, template: OutputCol
) -> tuple[LogicalOp, int]:
    """Wrap ``child`` in a Project adding a NULL column shaped like
    ``template`` (fresh cid)."""
    new_col = OutputCol(next_cid(), template.name, template.data_type, True)
    items = tuple((col, col.as_ref()) for col in child.output) + (
        (new_col, Const(None, template.data_type)),  # type: ignore[arg-type]
    )
    return Project(child, items), new_col.cid


def _is_canonical_branch(op: LogicalOp) -> bool:
    """The structural heuristic (no declared intent, Fig. 14a) only
    recognizes augmenter branches of the canonical shape ``Project(Scan)``
    whose items are plain column references or constants."""
    if isinstance(op, Scan):
        return True
    if isinstance(op, Project) and isinstance(op.child, Scan):
        return all(isinstance(expr, (ColRef, Const)) for _, expr in op.items)
    return False

"""Bottom-up cleanup: constant folding and operator collapsing.

Runs between the structural passes to keep plans in a normal form the other
rules can pattern-match on:

- fold constant subexpressions (``1 = 1`` -> ``TRUE``), simplify boolean
  connectives;
- drop ``Filter(TRUE)``; merge stacked Filters;
- collapse ``Project(Project(...))``; drop identity Projects;
- merge stacked Limits;
- remove ``DISTINCT`` when the input is already unique on the visible
  columns (a by-product of the same uniqueness derivation UAJ uses).
"""

from __future__ import annotations

from ...algebra.expr import (
    Call,
    Case,
    Cast,
    ColRef,
    Const,
    Expr,
    referenced_cids,
    rewrite_expr,
    substitute_cids,
)
from ...algebra.ops import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinType,
    Limit,
    LogicalOp,
    Project,
    Sort,
    UnionAll,
)
from ...datatypes import BOOLEAN
from ...errors import ExecutionError
from ..profiles import CAP_DISTINCT_ELIM, CAP_SIMPLIFY, CAP_UNION_PRUNE
from .simplify_joins import SimplifyContext


def cleanup_plan(plan: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    if not sctx.has(CAP_SIMPLIFY):
        return plan
    return _cleanup(plan, sctx)


def _cleanup(op: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    children = [_cleanup(child, sctx) for child in op.children]
    op = op.with_children(children)

    if isinstance(op, Filter):
        predicate = fold_expr(op.predicate)
        if isinstance(predicate, Const) and predicate.value is True:
            return op.child
        if isinstance(op.child, Filter):
            merged = Call(
                "AND", (op.child.predicate, predicate), BOOLEAN, nullable=True
            )
            return _cleanup(Filter(op.child.child, fold_expr(merged)), sctx)
        return Filter(op.child, predicate)

    if isinstance(op, Project):
        items = tuple((col, fold_expr(expr)) for col, expr in op.items)
        op = Project(op.child, items)
        if isinstance(op.child, Project):
            inner = {col.cid: expr for col, expr in op.child.items}
            composed = tuple(
                (col, fold_expr(substitute_cids(expr, inner))) for col, expr in op.items
            )
            return _cleanup(Project(op.child.child, composed), sctx)
        if op.is_identity():
            return op.child
        return op

    if isinstance(op, Limit):
        if isinstance(op.child, Limit):
            inner = op.child
            offset = inner.offset + op.offset
            bounds = []
            if inner.limit is not None:
                bounds.append(max(inner.limit - op.offset, 0))
            if op.limit is not None:
                bounds.append(op.limit)
            limit = min(bounds) if bounds else None
            return Limit(inner.child, limit, offset)
        return op

    if isinstance(op, Distinct) and sctx.has(CAP_DISTINCT_ELIM):
        visible = frozenset(op.output_cids)
        keys = sctx.derivation.unique_keys(op.child)
        if any(key <= visible for key in keys):
            sctx.trace.rewrite("distinct-elim")
            return op.child
        return op

    if isinstance(op, Join) and op.condition is not None:
        return _normalize_join(op)

    if isinstance(op, UnionAll) and sctx.has(CAP_UNION_PRUNE):
        return _prune_union(op, sctx)

    return op


def _prune_union(op: UnionAll, sctx: SimplifyContext) -> LogicalOp:
    """Drop provably empty Union All children; collapse a 1-child union.

    This is how a branch-id filter eliminates a draft-pattern union: a
    pushed-down ``bid = 1`` becomes constant FALSE in every other branch
    (paper Fig. 4: "the five-way Union All ... is removed").
    """
    from ..augmentation import is_provably_empty

    alive = [
        (child, mapping)
        for child, mapping in zip(op.inputs, op.child_maps)
        if not is_provably_empty(child)
    ]
    if len(alive) == len(op.inputs):
        return op
    sctx.trace.rewrite(
        "union-prune", dropped=len(op.inputs) - len(alive), kept=len(alive)
    )
    if not alive:
        alive = [(op.inputs[0], op.child_maps[0])]  # keep one empty child
    if len(alive) == 1:
        child, mapping = alive[0]
        items = tuple(
            (out_col, child.find_col(cid).as_ref())
            for out_col, cid in zip(op.output, mapping)
        )
        return Project(child, items)
    return UnionAll(
        tuple(c for c, _ in alive), op.output, tuple(m for _, m in alive)
    )


def _normalize_join(op: Join) -> Join:
    """Fold the condition and move single-side conjuncts into child Filters.

    For a LEFT OUTER join, a conjunct over only the augmenter's columns is
    equivalent to pre-filtering the augmenter (unmatched rows NULL-extend
    either way); this exposes constant restrictions like ``u.bid = 1``
    (Fig. 12b) to the uniqueness derivation.  For INNER joins both sides
    move.  Left-side conjuncts of a LEFT OUTER join must stay: they decide
    match vs NULL-extension, not row survival.
    """
    from ...algebra.expr import conjuncts, make_and

    folded = fold_expr(op.condition)
    keep: list[Expr] = []
    to_left: list[Expr] = []
    to_right: list[Expr] = []
    left_cids = op.left.output_cids
    right_cids = op.right.output_cids
    # Left-side conjuncts may only move for joins where "no match" means
    # "row dropped" (INNER, SEMI).  For LEFT OUTER they decide match vs.
    # NULL-extension; for ANTI a failing left conjunct KEEPS the row.
    left_movable = op.join_type in (JoinType.INNER, JoinType.SEMI)
    for conjunct in conjuncts(folded):
        refs = referenced_cids(conjunct)
        if refs and refs <= right_cids:
            to_right.append(conjunct)
        elif refs and refs <= left_cids and left_movable:
            to_left.append(conjunct)
        else:
            keep.append(conjunct)
    if not to_left and not to_right:
        if folded is op.condition:
            return op
        return Join(op.join_type, op.left, op.right, folded, op.declared,
                    op.case_join, op.null_aware)
    left = op.left if not to_left else Filter(op.left, make_and(to_left))
    right = op.right if not to_right else Filter(op.right, make_and(to_right))
    condition = make_and(keep)
    return Join(op.join_type, left, right, condition, op.declared,
                op.case_join, op.null_aware)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def fold_expr(expr: Expr) -> Expr:
    """Bottom-up constant folding with boolean short-circuit simplification."""

    def fold(node: Expr) -> Expr | None:
        if isinstance(node, Call):
            simplified = _simplify_boolean(node)
            if simplified is not None:
                return simplified
            if node.op == "AND" or node.op == "OR":
                return None
            if all(isinstance(a, Const) for a in node.args):
                return _eval_const_call(node)
        if isinstance(node, Cast) and isinstance(node.arg, Const):
            try:
                value = node.data_type.validate(node.arg.value)
            except Exception:
                return None
            return Const(value, node.data_type)
        return None

    return rewrite_expr(expr, fold)


def _simplify_boolean(node: Call) -> Expr | None:
    if node.op == "AND":
        parts = []
        for arg in node.args:
            if isinstance(arg, Const):
                if arg.value is False:
                    return Const(False, BOOLEAN)
                if arg.value is True:
                    continue
            parts.append(arg)
        if not parts:
            return Const(True, BOOLEAN)
        if len(parts) == 1:
            return parts[0]
        if len(parts) != len(node.args):
            return _chain("AND", parts)
        return None
    if node.op == "OR":
        parts = []
        for arg in node.args:
            if isinstance(arg, Const):
                if arg.value is True:
                    return Const(True, BOOLEAN)
                if arg.value is False:
                    continue
            parts.append(arg)
        if not parts:
            return Const(False, BOOLEAN)
        if len(parts) == 1:
            return parts[0]
        if len(parts) != len(node.args):
            return _chain("OR", parts)
        return None
    if node.op == "NOT" and isinstance(node.args[0], Const):
        value = node.args[0].value
        return Const(None if value is None else not value, BOOLEAN)
    return None


def _chain(op: str, parts: list[Expr]) -> Expr:
    """Left-deep binary chain (the evaluator treats AND/OR as binary)."""
    result = parts[0]
    for part in parts[1:]:
        result = Call(op, (result, part), BOOLEAN, nullable=True)
    return result


def _eval_const_call(node: Call) -> Expr | None:
    """Evaluate a call over constants via the engine's own evaluator."""
    from ...engine.chunk import Chunk
    from ...engine.eval import evaluate

    if referenced_cids(node):
        return None
    try:
        value = evaluate(node, Chunk({}, 1))[0]
    except ExecutionError:
        return None  # e.g. division by zero: leave for runtime
    except Exception:
        return None
    return Const(value, node.data_type)

"""Aggregation pushdown across decimal rounding (paper §7.1).

Decimal rounding does not commute with addition (``round(1.3)+round(2.4)=3``
but ``round(1.3+2.4)=4``), so ``sum(round(price*1.11, 2))`` normally blocks
every rewrite of the SUM.  The ``allow_precision_loss(...)`` SQL extension is
the user's explicit opt-in; with it this rule rewrites

    sum(round(e * c, k))   ->   round(sum(e) * c, k)

by peeling, from the aggregate argument: ``ROUND(·, k)`` wrappers (only with
the opt-in) and constant multiplicative factors ``· * c`` / ``· / c``
(factoring constants out of SUM is exact over our DECIMAL arithmetic, but it
is only *reachable* once the opt-in removes the rounding barrier — matching
the paper's description of the optimization being blocked by rounding).

The rewrite keeps the original output cid by compensating with a Project
above the Aggregate, so parents are unaffected.
"""

from __future__ import annotations

from ...algebra.expr import AggCall, Call, ColRef, Const, Expr, next_cid
from ...algebra.ops import Aggregate, LogicalOp, OutputCol, Project
from ..profiles import CAP_AGG_PUSHDOWN_PRECISION
from .simplify_joins import SimplifyContext


def push_aggregates(plan: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    if not sctx.has(CAP_AGG_PUSHDOWN_PRECISION):
        return plan
    return _rewrite(plan, sctx)


def _rewrite(op: LogicalOp, sctx: SimplifyContext) -> LogicalOp:
    children = [_rewrite(child, sctx) for child in op.children]
    op = op.with_children(children)
    if isinstance(op, Aggregate):
        return _rewrite_aggregate(op, sctx)
    return op


def _rewrite_aggregate(op: Aggregate, sctx: SimplifyContext) -> LogicalOp:
    new_aggs: list[tuple[OutputCol, AggCall]] = []
    post_items: list[tuple[OutputCol, Expr]] = []
    changed = False
    for col, call in op.aggs:
        peeled = _peel(call) if call.func == "SUM" and call.allow_precision_loss else None
        if peeled is None:
            new_aggs.append((col, call))
            post_items.append((col, col.as_ref()))
            continue
        inner_arg, wrappers = peeled
        changed = True
        inner_col = OutputCol(next_cid(), f"{col.name}_inner", call.data_type, True)
        new_aggs.append((inner_col, AggCall("SUM", inner_arg, call.data_type,
                                            call.distinct, call.allow_precision_loss)))
        post: Expr = inner_col.as_ref()
        for kind, payload in reversed(wrappers):
            if kind == "mul":
                post = Call("*", (post, payload), call.data_type, True)
            elif kind == "div":
                post = Call("/", (post, payload), call.data_type, True)
            else:  # round
                post = Call("ROUND", (post, payload), call.data_type, True)
        post_items.append((col, post))
    if not changed:
        return op
    sctx.trace.rewrite("agg-precision", aggregates=len(new_aggs))
    new_agg = Aggregate(op.child, op.group_cids, tuple(new_aggs))
    key_items = tuple(
        (new_agg.find_col(cid), new_agg.find_col(cid).as_ref()) for cid in op.group_cids
    )
    return Project(new_agg, key_items + tuple(post_items))


def _peel(call: AggCall) -> tuple[Expr, list[tuple[str, Expr]]] | None:
    """Peel ROUND and constant factors off a SUM argument.

    Returns ``(inner_expression, wrappers)`` where wrappers re-apply, in
    order from innermost to outermost, after the SUM; None when nothing
    peels.
    """
    wrappers: list[tuple[str, Expr]] = []
    expr = call.arg
    assert expr is not None
    while True:
        if isinstance(expr, Call) and expr.op == "ROUND":
            digits = expr.args[1] if len(expr.args) == 2 else Const(0, expr.data_type)
            if not isinstance(digits, Const):
                break
            wrappers.append(("round", digits))
            expr = expr.args[0]
            continue
        if isinstance(expr, Call) and expr.op == "*" and len(expr.args) == 2:
            a, b = expr.args
            if isinstance(b, Const) and b.value is not None:
                wrappers.append(("mul", b))
                expr = a
                continue
            if isinstance(a, Const) and a.value is not None:
                wrappers.append(("mul", a))
                expr = b
                continue
        if isinstance(expr, Call) and expr.op == "/" and len(expr.args) == 2:
            a, b = expr.args
            if isinstance(b, Const) and b.value is not None and b.value != 0:
                wrappers.append(("div", b))
                expr = a
                continue
        break
    if not wrappers:
        return None
    return expr, wrappers

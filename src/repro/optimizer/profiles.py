"""Optimizer capability profiles modeling the paper's five systems.

The paper evaluates SAP HANA Cloud, PostgreSQL 17, and three anonymized
commercial RDBMSs ("System X/Y/Z") on a suite of plan-simplification
queries (Tables 1-4).  We cannot run those engines; instead, each profile
enables exactly the derivation/rewrite capabilities that reproduce the
system's observed behaviour, and the benchmarks *run this optimizer* under
each profile and inspect the resulting plans.  The mapping from paper rows
to capabilities:

Table 1 (UAJ):
  UAJ 1   needs uaj + unique_from_pk
  UAJ 2   needs uaj + unique_from_groupby
  UAJ 3   needs uaj + unique_from_pk + unique_via_const_filter
  UAJ 1a  adds unique_through_join_table         (augmenter: table ⋈ table)
  UAJ 2a  adds unique_through_join_groupby       (augmenter: group-by ⋈ table)
  UAJ 3a  adds unique_through_join_table to UAJ 3
  UAJ 1b  adds unique_through_order_limit        (augmenter: order by + limit)

Table 2: limit_pushdown_aj.  Table 3: asj (+ asj_union_anchor for Fig 13a).
Table 4: unique_through_union_disjoint / unique_through_union_branchid.

Calibration (paper's observed Y/-):
  HANA      Y on everything.
  Postgres  UAJ 1/2/3/2a, nothing else.
  System X  nothing.
  System Y  UAJ 1/3.
  System Z  UAJ 1/2/3/1a/2a/3a (not 1b), nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.properties import (
    CAP_UNIQUE_FROM_DECLARED,
    CAP_UNIQUE_FROM_DISTINCT,
    CAP_UNIQUE_FROM_GROUPBY,
    CAP_UNIQUE_FROM_PK,
    CAP_UNIQUE_THROUGH_JOIN_GROUPBY,
    CAP_UNIQUE_THROUGH_JOIN_TABLE,
    CAP_UNIQUE_THROUGH_ORDER_LIMIT,
    CAP_UNIQUE_THROUGH_UNION_BRANCHID,
    CAP_UNIQUE_THROUGH_UNION_DISJOINT,
    CAP_UNIQUE_VIA_CONST_FILTER,
)
from ..errors import OptimizerError

# -- rewrite-rule capabilities ---------------------------------------------------

CAP_UAJ = "uaj"                                  # UAJ elimination rule (§4.3)
CAP_UAJ_INNER = "uaj_inner"                      # inner-join AJ 1a/1b variants
CAP_UAJ_EMPTY = "uaj_empty"                      # AJ 2b: join with empty augmenter
CAP_ASJ = "asj"                                  # ASJ elimination (§5.3)
CAP_ASJ_UNION_ANCHOR = "asj_union_anchor"        # Fig 13a: union in the anchor
CAP_ASJ_UNION_HEURISTIC = "asj_union_heuristic"  # Fig 13b w/o declared intent
CAP_CASE_JOIN = "case_join"                      # Fig 13b with declared intent (§6.3)
CAP_LIMIT_PUSHDOWN_AJ = "limit_pushdown_aj"      # Fig 6 / Table 2 (§4.4)
CAP_LIMIT_PUSHDOWN_UNION = "limit_pushdown_union"
CAP_AGG_PUSHDOWN_PRECISION = "agg_pushdown_precision"  # §7.1
CAP_AGG_PUSHDOWN_JOIN = "agg_pushdown_join"
CAP_FILTER_PUSHDOWN = "filter_pushdown"
CAP_PRUNE = "projection_prune"
CAP_SIMPLIFY = "simplify"                        # constant folding, collapse
CAP_DISTINCT_ELIM = "distinct_elim"
# Union All subgraph transformations (§6.3 names filter pushdown, projection
# pullup, join-through-union-all as HANA's arsenal): eliminating provably
# empty branches and collapsing 1-child unions.
CAP_UNION_PRUNE = "union_prune_empty"
# Cost-based greedy reordering of inner-join regions (generic: every real
# system has some form of it).
CAP_JOIN_REORDER = "join_reorder"

_GENERIC = frozenset({CAP_FILTER_PUSHDOWN, CAP_PRUNE, CAP_SIMPLIFY, CAP_JOIN_REORDER})

_HANA = _GENERIC | frozenset(
    {
        CAP_UAJ,
        CAP_UAJ_INNER,
        CAP_UAJ_EMPTY,
        CAP_ASJ,
        CAP_ASJ_UNION_ANCHOR,
        CAP_ASJ_UNION_HEURISTIC,
        CAP_CASE_JOIN,
        CAP_LIMIT_PUSHDOWN_AJ,
        CAP_LIMIT_PUSHDOWN_UNION,
        CAP_AGG_PUSHDOWN_PRECISION,
        CAP_AGG_PUSHDOWN_JOIN,
        CAP_DISTINCT_ELIM,
        CAP_UNION_PRUNE,
        CAP_UNIQUE_FROM_PK,
        CAP_UNIQUE_FROM_GROUPBY,
        CAP_UNIQUE_VIA_CONST_FILTER,
        CAP_UNIQUE_THROUGH_JOIN_TABLE,
        CAP_UNIQUE_THROUGH_JOIN_GROUPBY,
        CAP_UNIQUE_THROUGH_ORDER_LIMIT,
        CAP_UNIQUE_FROM_DISTINCT,
        CAP_UNIQUE_THROUGH_UNION_DISJOINT,
        CAP_UNIQUE_THROUGH_UNION_BRANCHID,
        CAP_UNIQUE_FROM_DECLARED,
    }
)


@dataclass(frozen=True)
class OptimizerProfile:
    """A named capability set."""

    name: str
    description: str
    caps: frozenset[str]

    def has(self, cap: str) -> bool:
        return cap in self.caps

    def without(self, *caps: str) -> "OptimizerProfile":
        """A derived profile with some capabilities removed (for ablations)."""
        removed = frozenset(caps)
        return OptimizerProfile(
            f"{self.name}-minus-{'-'.join(sorted(removed))}",
            f"{self.description} (without {', '.join(sorted(removed))})",
            self.caps - removed,
        )

    def with_caps(self, *caps: str) -> "OptimizerProfile":
        return OptimizerProfile(self.name, self.description, self.caps | frozenset(caps))


PROFILES: dict[str, OptimizerProfile] = {
    "hana": OptimizerProfile(
        "hana",
        "SAP HANA Cloud model: every capability in the paper",
        _HANA,
    ),
    "postgres": OptimizerProfile(
        "postgres",
        "PostgreSQL 17 model: UAJ via PK/group-by/const restriction; key "
        "tracking through joins only over aggregated subqueries",
        _GENERIC
        | frozenset(
            {
                CAP_UAJ,
                CAP_UNIQUE_FROM_PK,
                CAP_UNIQUE_FROM_GROUPBY,
                CAP_UNIQUE_VIA_CONST_FILTER,
                CAP_UNIQUE_THROUGH_JOIN_GROUPBY,
                CAP_DISTINCT_ELIM,
            }
        ),
    ),
    "system_x": OptimizerProfile(
        "system_x",
        "System X model: no join-elimination support at all",
        _GENERIC,
    ),
    "system_y": OptimizerProfile(
        "system_y",
        "System Y model: UAJ via PK and const restriction only",
        _GENERIC
        | frozenset({CAP_UAJ, CAP_UNIQUE_FROM_PK, CAP_UNIQUE_VIA_CONST_FILTER}),
    ),
    "system_z": OptimizerProfile(
        "system_z",
        "System Z model: broad UAJ incl. key tracking through joins, but no "
        "order/limit tracking and none of the ASJ/union/limit extensions",
        _GENERIC
        | frozenset(
            {
                CAP_UAJ,
                CAP_UNIQUE_FROM_PK,
                CAP_UNIQUE_FROM_GROUPBY,
                CAP_UNIQUE_VIA_CONST_FILTER,
                CAP_UNIQUE_THROUGH_JOIN_TABLE,
                CAP_UNIQUE_THROUGH_JOIN_GROUPBY,
                CAP_DISTINCT_ELIM,
            }
        ),
    ),
    "none": OptimizerProfile(
        "none",
        "No optimization at all (execute the bound plan as written)",
        frozenset(),
    ),
}

# Alias matching the paper's ordering in tables.
PROFILE_ORDER = ["hana", "postgres", "system_x", "system_y", "system_z"]


def get_profile(name: str) -> OptimizerProfile:
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise OptimizerError(
            f"unknown optimizer profile {name!r}; available: {sorted(PROFILES)}"
        ) from None

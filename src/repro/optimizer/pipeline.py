"""The optimizer pipeline: ordered rewrite passes run to a fixpoint.

Pass order (mirroring the paper's description of SAP HANA's heuristic
rewrite phase in §2.2):

1. cleanup      — constant folding / operator collapsing
2. filter push  — predicates migrate toward scans
3. simplify     — pruning + UAJ + ASJ + Union All interplay
4. limit push   — paging limits move below augmentation joins
5. agg push     — precision-loss aggregation rewrites

Steps 1-5 repeat until the plan's structural signature stabilizes (UAJ
removal routinely exposes further opportunities in deep VDM stacks).
"""

from __future__ import annotations

from ..algebra.ops import LogicalOp
from ..algebra.printer import structural_signature
from .profiles import (
    CAP_FILTER_PUSHDOWN,
    CAP_JOIN_REORDER,
    OptimizerProfile,
    get_profile,
)
from .rules.agg_pushdown import push_aggregates
from .rules.cleanup import cleanup_plan
from .rules.filter_pushdown import push_filters
from .rules.limit_pushdown import push_limits
from .rules.simplify_joins import SimplifyContext, simplify_plan

MAX_ITERATIONS = 5


def optimize_plan(
    plan: LogicalOp, profile: "str | OptimizerProfile", db=None
) -> LogicalOp:
    """Optimize ``plan`` under a capability profile.

    ``db`` is accepted for interface stability (cost-based decisions could
    consult statistics); the implemented rules are purely structural.
    """
    resolved = get_profile(profile) if isinstance(profile, str) else profile
    if not resolved.caps:
        return plan
    signature = structural_signature(plan)
    for _ in range(MAX_ITERATIONS):
        sctx = SimplifyContext(resolved)
        plan = cleanup_plan(plan, sctx)
        if resolved.has(CAP_FILTER_PUSHDOWN):
            plan = push_filters(plan)
        plan = simplify_plan(plan, SimplifyContext(resolved))
        plan = cleanup_plan(plan, SimplifyContext(resolved))
        plan = push_limits(plan, SimplifyContext(resolved))
        plan = push_aggregates(plan, SimplifyContext(resolved))
        new_signature = structural_signature(plan)
        if new_signature == signature:
            break
        signature = new_signature
    # Cost-based phase: greedy reordering of the surviving inner-join
    # regions (the paper's §2.2 heuristic-then-cost-based pipeline).
    if resolved.has(CAP_JOIN_REORDER) and db is not None:
        from .join_order import reorder_joins

        plan = reorder_joins(plan, db.catalog)
        plan = cleanup_plan(plan, SimplifyContext(resolved))
    return plan

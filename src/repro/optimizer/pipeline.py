"""The optimizer pipeline: ordered rewrite passes run to a fixpoint.

Pass order (mirroring the paper's description of SAP HANA's heuristic
rewrite phase in §2.2):

1. cleanup      — constant folding / operator collapsing
2. filter push  — predicates migrate toward scans
3. simplify     — pruning + UAJ + ASJ + Union All interplay
4. limit push   — paging limits move below augmentation joins
5. agg push     — precision-loss aggregation rewrites

Steps 1-5 repeat until the plan's structural signature stabilizes (UAJ
removal routinely exposes further opportunities in deep VDM stacks).

A :class:`~repro.observability.trace.QueryTrace` can ride along: each pass
then records its wall time, whether it changed the structural signature,
and how many operators it removed, and the rule modules record the named
rewrite cases they fire.  With the default null trace none of that
bookkeeping runs.  If the fixpoint loop exhausts :data:`MAX_ITERATIONS`
while the plan is still changing, a one-line ``warnings.warn`` makes the
non-convergence visible (deep VDM stacks that never stabilize would
otherwise silently execute a half-optimized plan).
"""

from __future__ import annotations

import time
import warnings

from ..algebra.ops import LogicalOp
from ..algebra.printer import structural_signature
from ..observability.trace import NULL_TRACE
from .profiles import (
    CAP_FILTER_PUSHDOWN,
    CAP_JOIN_REORDER,
    OptimizerProfile,
    get_profile,
)
from .rules.agg_pushdown import push_aggregates
from .rules.cleanup import cleanup_plan
from .rules.filter_pushdown import push_filters
from .rules.limit_pushdown import push_limits
from .rules.simplify_joins import SimplifyContext, simplify_plan

MAX_ITERATIONS = 5


class FixpointWarning(RuntimeWarning):
    """The rewrite loop hit MAX_ITERATIONS while the plan was still changing."""


class RuleFailureWarning(RuntimeWarning):
    """A rewrite pass raised and was sandboxed; the pre-rule plan was kept.

    Rewrites are an optimization, never a correctness requirement: a rule
    that crashes must degrade the plan, not the statement.  The failure is
    still surfaced — ``optimizer.rule_failures`` increments, the trace gets
    a warning, and :meth:`repro.database.Database.health` reports degraded.
    """


def optimize_plan(
    plan: LogicalOp, profile: "str | OptimizerProfile", db=None, trace=None,
    spans=None,
) -> LogicalOp:
    """Optimize ``plan`` under a capability profile.

    ``db`` is accepted for interface stability (cost-based decisions could
    consult statistics); the implemented rules are purely structural.
    ``trace`` is any trace object from :mod:`repro.observability.trace`
    (default: the no-op null trace).  ``spans``, when given, is an enabled
    :class:`repro.observability.spans.SpanTracer`: each fixpoint iteration
    and each rule pass then gets its own child span.
    """
    if trace is None:
        trace = NULL_TRACE
    if spans is not None and not spans.enabled:
        spans = None
    resolved = get_profile(profile) if isinstance(profile, str) else profile
    # Degradation plumbing (both optional): the facade's registry receives
    # sandboxed-rule counts, its injector drives the optimizer.rule point.
    metrics = getattr(db, "metrics", None)
    faults = getattr(db, "faults", None)
    if not resolved.caps:
        return plan
    signature = structural_signature(plan)
    converged = False
    for iteration in range(MAX_ITERATIONS):
        trace.begin_iteration(iteration)
        iteration_span = (
            None if spans is None
            else spans.start("optimizer.iteration", index=iteration)
        )
        plan = _run_pass(trace, iteration, "cleanup", cleanup_plan, plan,
                         resolved, spans, metrics, faults)
        if resolved.has(CAP_FILTER_PUSHDOWN):
            plan = _run_pass(
                trace, iteration, "filter_pushdown",
                lambda p, sctx: push_filters(p, sctx.trace), plan, resolved,
                spans, metrics, faults,
            )
        plan = _run_pass(trace, iteration, "simplify", simplify_plan, plan,
                         resolved, spans, metrics, faults)
        plan = _run_pass(trace, iteration, "cleanup2", cleanup_plan, plan,
                         resolved, spans, metrics, faults)
        plan = _run_pass(trace, iteration, "limit_pushdown", push_limits, plan,
                         resolved, spans, metrics, faults)
        plan = _run_pass(trace, iteration, "agg_pushdown", push_aggregates,
                         plan, resolved, spans, metrics, faults)
        new_signature = structural_signature(plan)
        changed = new_signature != signature
        trace.end_iteration(iteration, changed)
        if iteration_span is not None:
            iteration_span.attributes["changed"] = changed
            spans.end(iteration_span)
        if not changed:
            converged = True
            break
        signature = new_signature
    if not converged:
        message = (
            f"optimizer did not reach a fixpoint within {MAX_ITERATIONS} "
            f"iterations; executing the last plan (profile {resolved.name!r})"
        )
        trace.warning(message)
        warnings.warn(message, FixpointWarning, stacklevel=2)
    # Cost-based phase: greedy reordering of the surviving inner-join
    # regions (the paper's §2.2 heuristic-then-cost-based pipeline).
    if resolved.has(CAP_JOIN_REORDER) and db is not None:
        from .join_order import reorder_joins

        plan = _run_pass(
            trace, None, "join_reorder",
            lambda p, sctx: reorder_joins(p, db.catalog), plan, resolved, spans,
            metrics, faults,
        )
        plan = _run_pass(trace, None, "cleanup3", cleanup_plan, plan, resolved,
                         spans, metrics, faults)
    return plan


def _run_pass(trace, iteration, name, fn, plan, resolved, spans=None,
              metrics=None, faults=None):
    """Run one pass with a fresh SimplifyContext (derivation caches are
    keyed by node identity and must not outlive a plan mutation).

    The pass runs sandboxed: rules are functional (they return a new tree
    and never mutate the input), so if one raises, the pre-rule plan is
    still valid and the pipeline degrades to it instead of failing the
    statement.  :class:`SimulatedCrash` is a ``BaseException`` and escapes
    the sandbox on purpose — a crash is not a degradation.
    """
    sctx = SimplifyContext(resolved, trace)
    if not trace.enabled and spans is None:
        plan, _ = _apply_rule(name, fn, plan, sctx, trace, metrics, faults)
        return plan
    pass_span = None if spans is None else spans.start(f"pass:{name}")
    before_signature = structural_signature(plan)
    before_ops = sum(1 for _ in plan.walk())
    start = time.perf_counter()
    plan, failed = _apply_rule(name, fn, plan, sctx, trace, metrics, faults)
    elapsed = time.perf_counter() - start
    changed = structural_signature(plan) != before_signature
    removed = before_ops - sum(1 for _ in plan.walk())
    if trace.enabled:
        trace.record_pass(name, iteration, changed, elapsed, removed)
    if pass_span is not None:
        pass_span.attributes["changed"] = changed
        if removed:
            pass_span.attributes["operators_removed"] = removed
        if failed:
            pass_span.attributes["failed"] = True
            spans.event("optimizer.rule_failure", rule=name)
        spans.end(pass_span)
    return plan


def _apply_rule(name, fn, plan, sctx, trace, metrics, faults):
    """Apply one rewrite, returning ``(plan, failed)``."""
    try:
        if faults is not None:
            faults.fire("optimizer.rule", rule=name)
        return fn(plan, sctx), False
    except Exception as exc:  # noqa: BLE001 — any rule bug degrades, never fails
        if metrics is not None:
            metrics.counter("optimizer.rule_failures").inc()
        message = (
            f"optimizer pass {name!r} failed "
            f"({type(exc).__name__}: {exc}); keeping the pre-rule plan"
        )
        trace.warning(message)
        warnings.warn(message, RuleFailureWarning, stacklevel=4)
        return plan, True

"""Rule-based query optimizer implementing the paper's rewrite families.

Entry point: :func:`repro.optimizer.pipeline.optimize_plan`.  Which rewrites
run is controlled by a capability profile (:mod:`repro.optimizer.profiles`);
the ``hana`` profile enables everything, and the other profiles model the
systems of the paper's Tables 1-4.
"""

from .pipeline import optimize_plan  # noqa: F401
from .profiles import OptimizerProfile, get_profile, PROFILES  # noqa: F401

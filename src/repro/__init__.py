"""repro — reproduction of the SIGMOD-Companion '25 paper
"Enterprise Application-Database Co-Innovation for HTAP: A Virtual Data
Model and Its Query Optimization Needs" (Kim et al.).

Public API highlights:

- :class:`repro.Database` — an embedded in-memory columnar HTAP engine with
  MVCC, SQL, views, and the paper's optimizer (UAJ / ASJ / Union-All rules,
  limit pushdown, precision-loss aggregation pushdown, expression macros,
  declared join cardinalities, case join).
- :mod:`repro.vdm` — a CDS-style Virtual Data Model layer: entities with
  associations, layered views, upgrade-safe custom-field extension, draft
  tables, and data access control.
- :mod:`repro.workloads` — TPC-H-subset and S/4-style synthetic workloads.
- :mod:`repro.optimizer.profiles` — capability profiles reproducing the
  paper's five-system comparison (Tables 1-4).
- :mod:`repro.serving` — the concurrent multi-tenant serving layer:
  sessions, admission control with load shedding, per-tenant rate limits
  and circuit breakers, and the ``repro serve`` HTTP JSON gateway.
"""

from .database import Database  # noqa: F401
from .engine import QueryResult  # noqa: F401
from .errors import (  # noqa: F401
    BindError,
    CatalogError,
    CircuitOpenError,
    ConstraintError,
    ExecutionError,
    FaultInjectedError,
    OptimizerError,
    OverloadError,
    QueryTimeoutError,
    RateLimitedError,
    ReproError,
    SqlSyntaxError,
    TenantAccessError,
    TransactionError,
    TypeCheckError,
)

__version__ = "1.0.0"

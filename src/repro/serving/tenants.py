"""Per-tenant state: rate limits, circuit breakers, namespace scoping.

Tenancy here is a *serving-layer* concept — one shared catalog, with an
ownership map from table/view name to the tenant whose session created
it.  A statement may reference only tables its tenant owns, plus shared
objects: the ``sys.*`` namespace and anything created outside a session
(bootstrap schemas, workload loaders).  This is accident prevention
(namespace scoping for the paper's multi-application VDM story), not a
security boundary — every tenant still shares one process and one MVCC
store.

:func:`referenced_tables` extracts the table names a parsed statement
touches by walking the (frozen dataclass) AST generically, so FROM
clauses, joins, derived tables, set operations, scalar/EXISTS/IN
subqueries, and DML targets are all covered without per-node-type code.
"""

from __future__ import annotations

import dataclasses
import threading

from ..catalog.systables import SYS_PREFIX
from ..errors import TenantAccessError
from ..sql import ast
from .breaker import CircuitBreaker
from .ratelimit import TokenBucket

DEFAULT_TENANT = "default"


def referenced_tables(statement) -> set[str]:
    """All table/view names a statement references (lowercased).

    DDL *targets* (the name being created) are excluded — creating a table
    is a claim, not a reference — but a CREATE VIEW's defining query *is*
    walked, as are INSERT ... SELECT sources.
    """
    names: set[str] = set()

    def visit(node) -> None:
        if isinstance(node, ast.TableRef):
            names.add(node.name.lower())
        elif isinstance(node, (ast.Insert, ast.Update, ast.Delete)):
            names.add(node.table.lower())
        elif isinstance(node, ast.CreateTable):
            return  # nothing referenced, only defined
        elif isinstance(node, ast.DropStatement):
            names.add(node.name.lower())
        if dataclasses.is_dataclass(node):
            for field in dataclasses.fields(node):
                visit(getattr(node, field.name))
        elif isinstance(node, (tuple, list)):
            for item in node:
                visit(item)

    visit(statement)
    return names


class TenantState:
    """One tenant's limits, breaker, and serving counters.

    Counter increments happen under the owning registry's lock via the
    ``count`` helper so sys.admission never reads half-updated pairs.
    """

    def __init__(
        self,
        name: str,
        bucket: TokenBucket | None,
        breaker: CircuitBreaker,
    ) -> None:
        self.name = name
        self.bucket = bucket
        self.breaker = breaker
        self.admitted = 0
        self.shed = 0
        self.rate_limited = 0
        self.timeouts = 0
        self.errors = 0
        self.breaker_rejects = 0


class TenantRegistry:
    """Tenant lookup/creation plus the table-ownership map."""

    def __init__(
        self,
        rate_per_s: float | None = None,
        burst: int | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
    ) -> None:
        self._default_rate = rate_per_s
        self._default_burst = burst
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._lock = threading.RLock()
        self._tenants: dict[str, TenantState] = {}
        self._owners: dict[str, str] = {}

    def get(self, name: str) -> TenantState:
        lowered = (name or DEFAULT_TENANT).lower()
        with self._lock:
            state = self._tenants.get(lowered)
            if state is None:
                bucket = (
                    TokenBucket(self._default_rate, self._default_burst)
                    if self._default_rate is not None else None
                )
                state = TenantState(
                    lowered,
                    bucket,
                    CircuitBreaker(
                        lowered,
                        failure_threshold=self._breaker_threshold,
                        cooldown_s=self._breaker_cooldown_s,
                    ),
                )
                self._tenants[lowered] = state
            return state

    def configure(
        self,
        name: str,
        rate_per_s: float | None = None,
        burst: int | None = None,
        breaker_threshold: int | None = None,
        breaker_cooldown_s: float | None = None,
    ) -> TenantState:
        """Override one tenant's limits (replaces its bucket/breaker)."""
        state = self.get(name)
        with self._lock:
            if rate_per_s is not None:
                state.bucket = TokenBucket(rate_per_s, burst)
            if breaker_threshold is not None or breaker_cooldown_s is not None:
                state.breaker = CircuitBreaker(
                    state.name,
                    failure_threshold=(
                        breaker_threshold
                        if breaker_threshold is not None
                        else self._breaker_threshold
                    ),
                    cooldown_s=(
                        breaker_cooldown_s
                        if breaker_cooldown_s is not None
                        else self._breaker_cooldown_s
                    ),
                )
            return state

    def states(self) -> list[TenantState]:
        with self._lock:
            return list(self._tenants.values())

    def count(self, tenant: str, event: str, n: int = 1) -> None:
        state = self.get(tenant)
        with self._lock:
            setattr(state, event, getattr(state, event) + n)

    # -- namespace scoping -------------------------------------------------

    def owner_of(self, table: str) -> str | None:
        return self._owners.get(table.lower())

    def claim(self, tenant: str, table: str) -> None:
        with self._lock:
            self._owners[table.lower()] = (tenant or DEFAULT_TENANT).lower()

    def release(self, table: str) -> None:
        with self._lock:
            self._owners.pop(table.lower(), None)

    def check_access(self, tenant: str, statement) -> None:
        """Raise :class:`TenantAccessError` if ``statement`` references a
        table owned by a different tenant.  ``sys.*`` and unowned (shared)
        tables are readable by everyone."""
        lowered = (tenant or DEFAULT_TENANT).lower()
        for name in referenced_tables(statement):
            if name.startswith(SYS_PREFIX):
                continue
            owner = self._owners.get(name)
            if owner is not None and owner != lowered:
                raise TenantAccessError(
                    f"tenant {lowered!r} may not access {name!r} "
                    f"(owned by tenant {owner!r})"
                )

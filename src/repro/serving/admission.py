"""Admission control: bounded queue, concurrency cap, load shedding.

One :class:`AdmissionController` guards a shared :class:`~repro.database.
Database`.  At most ``max_concurrent`` statements run at once; up to
``max_queue`` more wait on a condition variable.  Anything beyond that is
*shed* immediately with a structured :class:`~repro.errors.OverloadError`
carrying a ``Retry-After`` hint — overload is a designed state, not a
crash (the Polynesia framing: bounded interference between concurrent
transactional and analytical work).

Deadlines include queue wait: :meth:`acquire` takes the statement's
absolute deadline and gives up with :class:`~repro.errors.
QueryTimeoutError` if the slot does not arrive in time, so a statement
that spent its whole budget queued never executes at all.

Metrics (when built with a registry): ``serving.admitted``,
``serving.shed``, ``serving.queue_timeouts`` counters;
``serving.queue_depth`` / ``serving.running`` gauges; and the
``serving.queue_wait_s`` histogram.
"""

from __future__ import annotations

import threading
import time

from ..errors import OverloadError, QueryTimeoutError


class AdmissionController:
    """Bounded-queue admission with queue-wait-inclusive deadlines."""

    def __init__(
        self,
        max_concurrent: int = 8,
        max_queue: int = 32,
        metrics=None,
    ) -> None:
        self.max_concurrent = max(1, int(max_concurrent))
        self.max_queue = max(0, int(max_queue))
        self._cond = threading.Condition()
        self._running = 0
        self._queued = 0
        self._closed = False
        # EWMA of observed service time, seeding the Retry-After hint.
        self._ema_service_s = 0.02
        if metrics is None:
            self._m_admitted = self._m_shed = self._m_queue_timeouts = None
            self._g_depth = self._g_running = self._h_wait = None
        else:
            self._m_admitted = metrics.counter("serving.admitted")
            self._m_shed = metrics.counter("serving.shed")
            self._m_queue_timeouts = metrics.counter("serving.queue_timeouts")
            self._g_depth = metrics.gauge("serving.queue_depth")
            self._g_running = metrics.gauge("serving.running")
            self._h_wait = metrics.histogram("serving.queue_wait_s")

    # -- introspection -----------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot(self) -> dict:
        """One consistent reading for sys.admission / the gateway stats."""
        with self._cond:
            return {
                "queued": self._queued,
                "running": self._running,
                "max_concurrent": self.max_concurrent,
                "queue_capacity": self.max_queue,
                "closed": self._closed,
            }

    def retry_after_hint(self) -> float:
        """Seconds until a rejected client plausibly gets a slot: the
        backlog drained ``max_concurrent`` at a time at the EWMA service
        rate, floored so clients never hammer in a tight loop."""
        backlog = self._queued + self._running
        return round(
            max(0.05, backlog * self._ema_service_s / self.max_concurrent), 3
        )

    # -- the slot protocol -------------------------------------------------

    def acquire(self, deadline: float | None = None) -> float:
        """Block until a run slot is granted; returns the queue wait (s).

        Sheds with :class:`OverloadError` when the bounded queue is full or
        the controller is draining; raises :class:`QueryTimeoutError` when
        ``deadline`` (absolute ``time.monotonic()``) expires while queued.
        """
        started = time.monotonic()
        with self._cond:
            if self._closed:
                raise OverloadError("admission closed: server is draining")
            if self._running < self.max_concurrent and self._queued == 0:
                self._running += 1
                self._note_admitted(0.0)
                return 0.0
            if self._queued >= self.max_queue:
                if self._m_shed is not None:
                    self._m_shed.inc()
                raise OverloadError(
                    f"admission queue full "
                    f"({self._running} running, {self._queued} queued)",
                    retry_after=self.retry_after_hint(),
                )
            self._queued += 1
            if self._g_depth is not None:
                self._g_depth.set(self._queued)
            try:
                while True:
                    if self._closed:
                        raise OverloadError(
                            "admission closed while queued: server is draining"
                        )
                    if self._running < self.max_concurrent:
                        self._running += 1
                        wait = time.monotonic() - started
                        self._note_admitted(wait)
                        return wait
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        if self._m_queue_timeouts is not None:
                            self._m_queue_timeouts.inc()
                        waited = time.monotonic() - started
                        raise QueryTimeoutError(
                            f"deadline exceeded after {waited:.3f}s in the "
                            f"admission queue (queue wait counts against "
                            f"the statement budget)"
                        )
                    self._cond.wait(remaining)
            finally:
                self._queued -= 1
                if self._g_depth is not None:
                    self._g_depth.set(self._queued)

    def release(self, service_s: float | None = None) -> None:
        with self._cond:
            self._running -= 1
            if service_s is not None:
                self._ema_service_s = (
                    0.8 * self._ema_service_s + 0.2 * service_s
                )
            if self._g_running is not None:
                self._g_running.set(self._running)
            # notify_all, not notify: a drain in close() waits on the same
            # condition as queued acquirers, and a single wake could land
            # on the wrong waiter.
            self._cond.notify_all()

    def run(self, fn, deadline: float | None = None):
        """Admit, call ``fn()``, release — the one-stop wrapper."""
        self.acquire(deadline)
        started = time.monotonic()
        try:
            return fn()
        finally:
            self.release(time.monotonic() - started)

    def _note_admitted(self, wait_s: float) -> None:
        if self._m_admitted is not None:
            self._m_admitted.inc()
            self._g_running.set(self._running)
            self._h_wait.observe(wait_s)

    # -- shutdown ----------------------------------------------------------

    def close(self, drain_timeout: float | None = None) -> bool:
        """Stop admitting and wait for in-flight statements to finish.

        Queued-but-not-admitted statements are woken and shed (that is the
        "stops admitting" half of graceful shutdown); running statements
        get ``drain_timeout`` seconds (None = wait forever) to complete.
        Returns True when the drain finished, False on timeout.
        """
        limit = (
            None if drain_timeout is None
            else time.monotonic() + drain_timeout
        )
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            while self._running > 0:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

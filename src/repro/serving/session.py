"""Sessions and the SessionManager: many clients, one Database.

A :class:`Session` owns one client's transaction state (an optional
explicit transaction, i.e. its MVCC snapshot) and its serving
bookkeeping; a :class:`SessionManager` owns the shared admission
controller, the tenant registry, and the session table, and
self-registers on ``db.serving`` so ``sys.sessions`` / ``sys.admission``
and :meth:`Database.health` can see it.

Every statement submitted through a session runs the same pipeline::

    breaker.allow -> token bucket -> namespace check -> admission queue
        -> Database.query/execute (deadline stamped at submission)
        -> breaker.record_success/record_failure

Deadlines are stamped *at submission*, before the admission queue, so
queue wait counts against the statement budget — a statement that spent
its whole budget queued raises :class:`~repro.errors.QueryTimeoutError`
without ever executing.

GIL story: the engine is pure Python, so concurrent statements
time-slice one interpreter rather than using many cores.  What the
serving layer guarantees is *safety* (no torn state — see the storage
locks) and *bounded interference* (admission caps, shedding, deadlines),
which are exactly the properties that survive a move to a GIL-free
runtime or a C executor.
"""

from __future__ import annotations

import itertools
import threading
import time

from ..errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    FaultInjectedError,
    OverloadError,
    QueryTimeoutError,
    RateLimitedError,
    SqlSyntaxError,
    TypeCheckError,
)
from ..sql import ast, parse_statement
from .admission import AdmissionController
from .tenants import DEFAULT_TENANT, TenantRegistry

#: Client-side mistakes: never trip the circuit breaker.
CLIENT_ERRORS = (
    SqlSyntaxError, BindError, CatalogError, ConstraintError, TypeCheckError,
)

IDLE, QUEUED, RUNNING, CLOSED = "idle", "queued", "running", "closed"


class Session:
    """One client's handle on the shared database."""

    def __init__(self, manager: "SessionManager", session_id: str, tenant: str):
        self._manager = manager
        self.session_id = session_id
        self.tenant = tenant
        self.opened_at = time.time()
        self.state = IDLE
        self.queries_run = 0
        self.errors = 0
        self.last_query_id: str | None = None
        self._txn = None
        # Serializes this session's statements and transaction control: a
        # session is one client's handle, so a second concurrent statement
        # is a protocol violation (rejected in _submit), while begin /
        # commit / rollback wait their turn rather than swapping _txn
        # under a statement that is still executing on it.
        self._slock = threading.RLock()

    # -- statements --------------------------------------------------------

    def query(self, sql: str, timeout: float | None = None):
        """Run one SELECT through admission control."""
        return self._manager._submit(self, sql, timeout, query_only=True)

    def execute(self, sql: str, timeout: float | None = None):
        """Run any statement (SELECT/DML/DDL) through admission control."""
        return self._manager._submit(self, sql, timeout, query_only=False)

    # -- explicit transactions --------------------------------------------

    @property
    def txn_open(self) -> bool:
        return self._txn is not None

    def begin(self) -> None:
        with self._slock:
            if self._txn is not None:
                raise ExecutionError(
                    f"session {self.session_id} already has an open transaction"
                )
            self._txn = self._manager.db.begin()

    def commit(self) -> None:
        with self._slock:
            if self._txn is None:
                raise ExecutionError(
                    f"session {self.session_id}: no open transaction"
                )
            txn, self._txn = self._txn, None
            self._manager.db.commit(txn)

    def rollback(self) -> None:
        with self._slock:
            if self._txn is None:
                raise ExecutionError(
                    f"session {self.session_id}: no open transaction"
                )
            txn, self._txn = self._txn, None
            self._manager.db.rollback(txn)

    def close(self) -> None:
        """Roll back any open transaction and unregister the session."""
        self._manager._close_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SessionManager:
    """The serving layer for one Database; self-registers on ``db.serving``."""

    def __init__(
        self,
        db,
        max_concurrent: int = 8,
        max_queue: int = 32,
        default_timeout_s: float | None = None,
        rate_per_s: float | None = None,
        burst: int | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
    ) -> None:
        self.db = db
        self.default_timeout_s = default_timeout_s
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            max_queue=max_queue,
            metrics=db.metrics,
        )
        self.tenants = TenantRegistry(
            rate_per_s=rate_per_s,
            burst=burst,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
        )
        self._sessions: dict[str, Session] = {}
        self._session_seq = itertools.count(1)
        self._lock = threading.RLock()
        self._draining = False
        self._closed = False
        self._g_sessions = db.metrics.gauge("serving.sessions_open")
        self._m_rate_limited = db.metrics.counter("serving.rate_limited")
        self._m_breaker_rejects = db.metrics.counter("serving.breaker_rejects")
        db.serving = self

    # -- session lifecycle -------------------------------------------------

    def session(self, tenant: str = DEFAULT_TENANT) -> Session:
        with self._lock:
            if self._draining or self._closed:
                raise OverloadError("server is draining; no new sessions")
            session = Session(
                self, f"s{next(self._session_seq)}", (tenant or DEFAULT_TENANT).lower()
            )
            self._sessions[session.session_id] = session
            self._g_sessions.set(len(self._sessions))
            return session

    def get_session(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise ExecutionError(f"no session {session_id!r}")
        return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def _close_session(self, session: Session,
                       lock_timeout: float = 5.0) -> None:
        with self._lock:
            if session.state == CLOSED:
                return
            session.state = CLOSED
            self._sessions.pop(session.session_id, None)
            self._g_sessions.set(len(self._sessions))
        # Roll back an abandoned transaction only once no statement is
        # executing on it: yanking the transaction under an in-flight
        # statement would let it observe a rolled-back snapshot.
        if lock_timeout > 0:
            acquired = session._slock.acquire(timeout=lock_timeout)
        else:
            acquired = session._slock.acquire(blocking=False)
        if not acquired:
            # A statement is still running on this session (drain timed
            # out); leave its transaction for WAL recovery instead.
            return
        try:
            if session._txn is not None:
                txn, session._txn = session._txn, None
                try:
                    self.db.rollback(txn)
                except Exception:
                    pass  # already aborted/crashed; closing must not raise
        finally:
            session._slock.release()

    # -- introspection -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """The gateway's /stats payload."""
        admission = self.admission.snapshot()
        tenants = {}
        for state in self.tenants.states():
            tenants[state.name] = {
                "admitted": state.admitted,
                "shed": state.shed,
                "rate_limited": state.rate_limited,
                "timeouts": state.timeouts,
                "errors": state.errors,
                "breaker_state": state.breaker.state,
                "breaker_rejects": state.breaker_rejects,
            }
        return {
            "admission": admission,
            "tenants": tenants,
            "sessions_open": len(self._sessions),
            "draining": self._draining,
        }

    # -- the statement pipeline -------------------------------------------

    def _submit(self, session: Session, sql: str, timeout: float | None,
                query_only: bool):
        submitted = time.monotonic()
        if not session._slock.acquire(blocking=False):
            raise ExecutionError(
                f"session {session.session_id} already has a statement in "
                "flight; a session runs one statement at a time"
            )
        try:
            return self._submit_locked(session, sql, timeout, query_only,
                                       submitted)
        finally:
            session._slock.release()

    def _submit_locked(self, session: Session, sql: str,
                       timeout: float | None, query_only: bool,
                       submitted: float):
        if session.state == CLOSED:
            raise ExecutionError(f"session {session.session_id} is closed")
        if self._draining or self._closed:
            raise OverloadError("server is draining")
        effective = timeout if timeout is not None else self.default_timeout_s
        deadline = None if effective is None else submitted + effective
        tenant = self.tenants.get(session.tenant)

        try:
            probe = tenant.breaker.allow()
        except Exception:
            self.tenants.count(session.tenant, "breaker_rejects")
            self._m_breaker_rejects.inc()
            raise
        # From here the breaker must reach exactly one verdict: success,
        # failure, or cancel_probe on abandonment — otherwise a granted
        # half-open probe slot leaks and locks the tenant out forever.
        settled = False
        try:
            bucket = tenant.bucket
            if bucket is not None:
                wait_hint = bucket.try_acquire()
                if wait_hint > 0:
                    self.tenants.count(session.tenant, "rate_limited")
                    self._m_rate_limited.inc()
                    raise RateLimitedError(
                        f"tenant {session.tenant!r} exceeded its rate limit",
                        retry_after=wait_hint,
                    )
            # Scope check before queueing: a cross-tenant statement must
            # not consume a slot.  (The statement is parsed again inside
            # the engine; parse cost is trivial next to a queue slot.)
            statement = parse_statement(sql)
            if query_only and not isinstance(statement, ast.Query):
                raise ExecutionError("query() expects a SELECT statement")
            self.tenants.check_access(session.tenant, statement)

            session.state = QUEUED
            try:
                def work():
                    session.state = RUNNING
                    return self._run_statement(session, statement, sql,
                                               deadline)

                outcome = self.admission.run(work, deadline=deadline)
            except QueryTimeoutError:
                self.tenants.count(session.tenant, "timeouts")
                session.errors += 1
                settled = True
                tenant.breaker.record_failure()
                raise
            except OverloadError:
                # Shedding is the controller doing its job, not a tenant
                # fault: the probe is abandoned, not failed.
                self.tenants.count(session.tenant, "shed")
                raise
            except CLIENT_ERRORS:
                session.errors += 1
                raise
            except (ExecutionError, FaultInjectedError):
                session.errors += 1
                settled = True
                tenant.breaker.record_failure()
                self.tenants.count(session.tenant, "errors")
                raise
            finally:
                if session.state != CLOSED:
                    session.state = IDLE
            settled = True
            tenant.breaker.record_success()
            self.tenants.count(session.tenant, "admitted")
            return outcome
        finally:
            if probe and not settled:
                tenant.breaker.cancel_probe()

    def _run_statement(self, session: Session, statement, sql: str,
                       deadline: float | None):
        db = self.db
        if isinstance(statement, ast.Query):
            result = db.query(sql, txn=session._txn, deadline=deadline)
            session.queries_run += 1
            if result.stats is not None:
                session.last_query_id = result.stats.query_id
            return result
        # DML/DDL: cooperative deadlines only cover the queue wait (the
        # write paths have no per-batch deadline checks); an already-spent
        # budget still fails before execution via admission.
        outcome = db.execute(sql, txn=session._txn)
        session.queries_run += 1
        if isinstance(statement, (ast.CreateTable, ast.CreateView)):
            self.tenants.claim(session.tenant, statement.name)
        elif isinstance(statement, ast.DropStatement):
            self.tenants.release(statement.name)
        return outcome

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, drain_timeout: float | None = 10.0) -> bool:
        """Graceful shutdown: stop admitting, drain in-flight statements,
        roll back abandoned transactions, flush the WAL.

        Returns True when every in-flight statement finished inside
        ``drain_timeout`` (None = wait forever).  Idempotent.
        """
        with self._lock:
            if self._closed:
                return True
            self._draining = True
        drained = self.admission.close(drain_timeout)
        for session in self.sessions():
            # After a failed drain some statements are still executing;
            # skip their rollback (non-blocking acquire) rather than
            # rolling back a transaction a statement is actively using.
            self._close_session(session, lock_timeout=5.0 if drained else 0.0)
        wal = getattr(self.db, "wal", None)
        if wal is not None and getattr(wal, "durable", False):
            try:
                wal.sync()
            except Exception:
                pass  # a crashed/closed WAL must not wedge shutdown
        with self._lock:
            self._closed = True
        return drained

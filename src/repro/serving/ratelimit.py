"""Per-tenant token-bucket rate limiting.

A bucket holds up to ``burst`` tokens and refills at ``rate_per_s``.
Each statement costs one token; an empty bucket answers with the exact
time until the next token, which the serving layer turns into a
:class:`~repro.errors.RateLimitedError` (HTTP 429 + ``Retry-After``).
"""

from __future__ import annotations

import math
import threading
import time


class TokenBucket:
    """Classic token bucket; thread-safe; monotonic-clock based.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int | None = None,
        clock=time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s!r}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst) if burst is not None else max(
            1, math.ceil(rate_per_s)
        )
        self._tokens = float(self.burst)
        self._clock = clock
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_s
            )
            self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0 on success, else the
        seconds until the request could succeed (nothing is taken)."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return round((tokens - self._tokens) / self.rate_per_s, 4)

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens

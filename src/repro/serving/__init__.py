"""The concurrent multi-tenant serving layer.

Makes one shared :class:`~repro.database.Database` safely usable by many
concurrent clients, with overload as a designed state:

- :class:`.session.Session` / :class:`.session.SessionManager` — per-client
  transaction state and the statement pipeline (breaker → rate limit →
  namespace check → admission → engine), self-registered on
  ``db.serving`` for ``sys.sessions`` / ``sys.admission`` / ``health()``.
- :class:`.admission.AdmissionController` — bounded queue,
  ``max_concurrent`` running slots, queue-wait-inclusive deadlines,
  structured shedding (:class:`~repro.errors.OverloadError` +
  ``Retry-After``).
- :class:`.ratelimit.TokenBucket` — per-tenant rate limiting
  (:class:`~repro.errors.RateLimitedError`).
- :class:`.breaker.CircuitBreaker` — per-tenant trip/half-open-probe
  recovery (:class:`~repro.errors.CircuitOpenError`), wired into
  ``db.health()``.
- :class:`.gateway.GatewayServer` — the stdlib HTTP JSON gateway
  (``repro serve``) with graceful drain-and-flush shutdown.
"""

from .admission import AdmissionController
from .breaker import CircuitBreaker
from .gateway import GatewayServer
from .ratelimit import TokenBucket
from .session import Session, SessionManager
from .tenants import DEFAULT_TENANT, TenantRegistry, referenced_tables

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DEFAULT_TENANT",
    "GatewayServer",
    "Session",
    "SessionManager",
    "TenantRegistry",
    "TokenBucket",
    "referenced_tables",
]

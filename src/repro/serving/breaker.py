"""Per-tenant circuit breaker with half-open probe recovery.

States::

    CLOSED ──(failure_threshold consecutive failures)──▶ OPEN
    OPEN ──(cooldown_s elapses)──▶ HALF_OPEN (one probe admitted)
    HALF_OPEN ──probe succeeds──▶ CLOSED
    HALF_OPEN ──probe fails──▶ OPEN (cooldown restarts)

Failures are engine-side faults (timeouts, execution errors) recorded by
the session layer; client errors (syntax, binding) never trip the
breaker.  While OPEN, :meth:`allow` raises
:class:`~repro.errors.CircuitOpenError` with a ``retry_after`` hint;
tripped breakers degrade :meth:`repro.database.Database.health`.
"""

from __future__ import annotations

import threading
import time

from ..errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One tenant's breaker; thread-safe; monotonic-clock based."""

    def __init__(
        self,
        tenant: str = "default",
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.tenant = tenant
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    @property
    def trips(self) -> int:
        return self._trips

    def _effective_state(self) -> str:
        """OPEN decays to HALF_OPEN once the cooldown elapsed (lock held)."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """Gate one statement; raises :class:`CircuitOpenError` if the
        breaker is open, or half-open with a probe already in flight.

        Returns True when *this* call was granted the half-open probe
        slot — the caller must then settle the probe with exactly one of
        :meth:`record_success`, :meth:`record_failure`, or
        :meth:`cancel_probe`, or the slot leaks and every later
        ``allow()`` is rejected forever.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return False
            if state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            if state == HALF_OPEN:
                retry_after = 0.05  # a probe is deciding; check back shortly
            else:
                retry_after = round(
                    max(0.0, self.cooldown_s - (self._clock() - self._opened_at)),
                    3,
                )
            raise CircuitOpenError(self.tenant, retry_after=retry_after)

    def cancel_probe(self) -> None:
        """Return a probe slot granted by :meth:`allow` when the statement
        was abandoned before reaching the engine (rate-limited, shed,
        parse/access rejection): no verdict on tenant health either way,
        so the next ``allow()`` may probe again."""
        with self._lock:
            self._probe_in_flight = False

    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures = 0
            if state == HALF_OPEN:
                # The recovery probe (or a straggler racing it) came back
                # healthy: close and resume normal traffic.
                self._probe_in_flight = False
                self._state = CLOSED
            # While OPEN, a slow statement admitted before the trip that
            # later succeeds must NOT close the breaker — recovery goes
            # through the cooldown + half-open probe, never around it.

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures += 1
            was_probe = self._probe_in_flight
            self._probe_in_flight = False
            if state == HALF_OPEN and was_probe:
                # The recovery probe failed: reopen, restart the cooldown.
                self._state = OPEN
                self._opened_at = self._clock()
                self._trips += 1
            elif (
                state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._trips += 1

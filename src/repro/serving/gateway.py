"""The HTTP JSON gateway: ``repro serve``.

A stdlib ``ThreadingHTTPServer`` in front of one
:class:`~repro.serving.session.SessionManager` (each request runs on its
own thread; admission control, not the HTTP layer, bounds concurrency).
Endpoints:

- ``POST /v1/query``    ``{"sql": ..., "tenant"?: ..., "session"?: ...,
  "timeout"?: seconds}`` — runs any statement.  Queries answer
  ``{"ok": true, "columns": [...], "rows": [...], "row_count": N,
  "elapsed_ms": ..., "query_id": ...}``; DML answers ``rows_affected``;
  DDL answers just ``{"ok": true}``.
- ``POST /v1/session``  ``{"tenant"?: ...}`` → ``{"session": "s1"}`` —
  open a sticky session (explicit transactions via ``"sql": "begin" /
  "commit" / "rollback"`` on /v1/query with that session).
- ``POST /v1/session/close``  ``{"session": "s1"}``.
- ``GET /stats``        admission/tenant/session counters as JSON.
- ``GET /healthz``      same contract as the metrics server: always 200,
  body starts ``ok`` or ``degraded``.

Error mapping (structured shedding — the overload contract)::

    OverloadError / RateLimitedError  429  + Retry-After header
    CircuitOpenError                  503  + Retry-After header
    QueryTimeoutError                 408
    TenantAccessError                 403
    other ReproError                  400
    anything else                     500

Every error body is ``{"ok": false, "error": ..., "type": ...,
"retry_after"?: seconds}``.

Graceful shutdown (:meth:`GatewayServer.close`): stop admitting, drain
in-flight statements, roll back abandoned transactions, flush the WAL,
then stop the HTTP listener.  Requests that arrive mid-drain are shed
with 429, never errors.
"""

from __future__ import annotations

import datetime
import decimal
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (
    CircuitOpenError,
    OverloadError,
    QueryTimeoutError,
    ReproError,
    TenantAccessError,
)
from .session import SessionManager
from .tenants import DEFAULT_TENANT


def _json_default(value):
    if isinstance(value, decimal.Decimal):
        return str(value)
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def error_response(exc: BaseException) -> tuple[int, dict]:
    """Map an exception to ``(http_status, body)`` per the gateway contract."""
    retry_after = getattr(exc, "retry_after", None)
    body = {"ok": False, "error": str(exc), "type": type(exc).__name__}
    if retry_after is not None:
        body["retry_after"] = retry_after
    if isinstance(exc, OverloadError):
        return 429, body
    if isinstance(exc, CircuitOpenError):
        return 503, body
    if isinstance(exc, QueryTimeoutError):
        return 408, body
    if isinstance(exc, TenantAccessError):
        return 403, body
    if isinstance(exc, ReproError):
        return 400, body
    return 500, body


def _make_handler(gateway: "GatewayServer"):
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                health = gateway.db.health()
                body = health["status"] + "".join(
                    f"\n{reason}" for reason in health["reasons"]
                )
                self._reply(200, "text/plain; charset=utf-8", body + "\n")
            elif path == "/stats":
                self._reply_json(200, gateway.serving.stats())
            else:
                self._reply_json(404, {"ok": False,
                                       "error": f"no endpoint {path!r}"})

        def do_POST(self):  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            try:
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b"{}"
                payload = json.loads(raw or b"{}")
                if not isinstance(payload, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as exc:
                self._reply_json(400, {"ok": False, "error": str(exc),
                                       "type": "BadRequest"})
                return
            try:
                if path == "/v1/query":
                    self._reply_json(200, gateway.handle_query(payload))
                elif path == "/v1/session":
                    session = gateway.serving.session(
                        payload.get("tenant", DEFAULT_TENANT)
                    )
                    self._reply_json(200, {"ok": True,
                                           "session": session.session_id,
                                           "tenant": session.tenant})
                elif path == "/v1/session/close":
                    gateway.serving.get_session(
                        str(payload.get("session", ""))
                    ).close()
                    self._reply_json(200, {"ok": True})
                else:
                    self._reply_json(404, {"ok": False,
                                           "error": f"no endpoint {path!r}"})
            except Exception as exc:
                status, body = error_response(exc)
                headers = {}
                if body.get("retry_after") is not None:
                    headers["Retry-After"] = f"{body['retry_after']:.3f}"
                self._reply_json(status, body, headers)

        def _reply(self, status: int, content_type: str, body: str,
                   headers: dict | None = None) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _reply_json(self, status: int, data,
                        headers: dict | None = None) -> None:
            self._reply(status, "application/json; charset=utf-8",
                        json.dumps(data, default=_json_default), headers)

        def log_message(self, format, *args):  # noqa: A002
            pass  # the serving metrics are the observability surface

    return Handler


class GatewayServer:
    """The JSON gateway bound to one database's serving layer.

    Builds a :class:`SessionManager` when not handed one (extra keyword
    arguments are forwarded to it), so ``GatewayServer(db, port=0,
    max_concurrent=4).start()`` is a complete server.
    """

    def __init__(
        self,
        db,
        port: int = 8080,
        host: str = "127.0.0.1",
        serving: SessionManager | None = None,
        **manager_kwargs,
    ) -> None:
        self.db = db
        self.serving = (
            serving if serving is not None
            else SessionManager(db, **manager_kwargs)
        )
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- statement handling ------------------------------------------------

    def handle_query(self, payload: dict) -> dict:
        """Run one /v1/query request; raises for the error mapper."""
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ReproError("missing 'sql' in request body")
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ReproError(
                    "'timeout' must be a number (seconds)"
                ) from None
        session_id = payload.get("session")
        if session_id is not None:
            session = self.serving.get_session(str(session_id))
            ephemeral = False
        else:
            session = self.serving.session(payload.get("tenant", DEFAULT_TENANT))
            ephemeral = True
        try:
            lowered = sql.strip().rstrip(";").lower()
            if lowered in ("begin", "commit", "rollback"):
                if ephemeral:
                    raise ReproError(
                        f"{lowered.upper()} requires a sticky session "
                        "(POST /v1/session first)"
                    )
                getattr(session, lowered)()
                return {"ok": True}
            started = time.perf_counter()
            outcome = session.execute(sql, timeout=timeout)
            elapsed_ms = (time.perf_counter() - started) * 1e3
            if outcome is None:
                return {"ok": True}
            if isinstance(outcome, int):
                return {"ok": True, "rows_affected": outcome,
                        "elapsed_ms": round(elapsed_ms, 3)}
            return {
                "ok": True,
                "columns": outcome.column_names,
                "rows": [list(row) for row in outcome.rows],
                "row_count": len(outcome.rows),
                "elapsed_ms": round(elapsed_ms, 3),
                "query_id": (
                    outcome.stats.query_id if outcome.stats is not None else None
                ),
            }
        finally:
            if ephemeral:
                session.close()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "GatewayServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant (the CLI surface)."""
        self._httpd.serve_forever()

    def close(self, drain_timeout: float | None = 10.0) -> bool:
        """Graceful shutdown; returns True when the drain completed."""
        drained = self.serving.shutdown(drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        return drained

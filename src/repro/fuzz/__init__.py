"""Randomized differential testing for optimizer rewrites and streaming
execution (SQLancer-style; cf. the NoREC / TLP oracles from PAPERS.md).

The paper's central claim is that UAJ/ASJ elimination, limit pushdown, and
their Union All interplay are *semantics-preserving* rewrites over VDM view
stacks.  This package turns that claim into a machine-checked invariant:

:mod:`repro.fuzz.generator`
    A schema-aware workload generator.  Each :class:`Case` is a complete,
    self-contained workload — base tables with data, a VDM view stack
    (augmentation joins with declared ``..1`` cardinalities, custom-field
    ASJ extensions, branch-id-tagged Union All drafts), and one SELECT —
    biased so the query provably triggers a chosen rewrite rule.

:mod:`repro.fuzz.oracles`
    Three oracles over a case: **rewrite-differential** (optimizer on vs.
    off, multiset-compare), **batch-size metamorphic** (batch_size 1 vs.
    1024 vs. whole-table must agree), and **limit/cardinality metamorphic**
    (LIMIT n ⊆ unlimited, row counts, COUNT(*) consistency).

:mod:`repro.fuzz.reducer`
    A greedy shrinker: failing cases are minimized (query clauses, view
    stack, table rows) while the discrepancy persists, then serialized as
    replayable ``.json`` corpus files.

:mod:`repro.fuzz.runner`
    The campaign driver behind ``python -m repro fuzz`` (seeded,
    ``--runs`` / ``--time-budget`` / ``--corpus-dir``), reporting
    ``fuzz.*`` metrics through the engine's :class:`MetricsRegistry`.
"""

from .generator import (
    TARGET_FIRES,
    TARGETS,
    Case,
    QuerySpec,
    TableSpec,
    WorkloadGenerator,
)
from .oracles import (
    ORACLES,
    Discrepancy,
    comparison_mode,
    run_all_oracles,
    run_batch_metamorphic,
    run_limit_metamorphic,
    run_rewrite_differential,
    run_vectorized_differential,
)
from .reducer import reduce_case
from .runner import (
    CampaignReport,
    FoundBug,
    FuzzCampaign,
    replay_corpus_file,
    run_fuzz,
)

__all__ = [
    "TARGETS",
    "TARGET_FIRES",
    "Case",
    "QuerySpec",
    "TableSpec",
    "WorkloadGenerator",
    "ORACLES",
    "Discrepancy",
    "comparison_mode",
    "run_all_oracles",
    "run_batch_metamorphic",
    "run_limit_metamorphic",
    "run_rewrite_differential",
    "run_vectorized_differential",
    "reduce_case",
    "CampaignReport",
    "FoundBug",
    "FuzzCampaign",
    "replay_corpus_file",
    "run_fuzz",
]

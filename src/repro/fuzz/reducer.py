"""Greedy test-case reduction: shrink a failing case while the discrepancy
persists.

The reducer never edits SQL text.  It works on the structured
:class:`~repro.fuzz.generator.Case` — dropping query clauses, select
columns, whole views, and table rows (a ddmin-style chunk pass) — and
re-renders, so every intermediate candidate is a well-formed case.  A
candidate is accepted only if the *same oracle* still reports a
discrepancy; a candidate that merely fails differently (or no longer
builds) is rejected, which keeps the reduction anchored to one bug.

The result is the minimal replayable repro that gets serialized into the
corpus (``tests/corpus/*.json``) and attached to the fix as a regression
test.
"""

from __future__ import annotations

from copy import deepcopy

from .generator import Case
from .oracles import ORACLES

#: Upper bound on oracle invocations per reduction — each invocation builds
#: several databases, so runaway reductions must be impossible.
DEFAULT_BUDGET = 250


def _still_fails(case: Case, oracle_name: str) -> bool:
    try:
        return ORACLES[oracle_name](case) is not None
    except Exception:  # noqa: BLE001 — a broken candidate is just "rejected"
        return False


def reduce_case(
    case: Case, oracle_name: str, budget: int = DEFAULT_BUDGET
) -> tuple[Case, int]:
    """Shrink ``case`` while ``oracle_name`` still reports a discrepancy.

    Returns ``(reduced_case, accepted_steps)``; ``accepted_steps`` counts
    the successful shrinks (feeds the ``fuzz.reduced_steps`` metric).
    """
    if oracle_name not in ORACLES:
        raise ValueError(f"unknown oracle {oracle_name!r}")
    state = {"attempts": 0, "steps": 0}

    def try_candidate(candidate: Case) -> bool:
        if state["attempts"] >= budget:
            return False
        state["attempts"] += 1
        if _still_fails(candidate, oracle_name):
            state["steps"] += 1
            return True
        return False

    current = deepcopy(case)
    changed = True
    while changed and state["attempts"] < budget:
        changed = False
        for transform in (_shrink_query, _shrink_views, _shrink_rows):
            result = transform(current, try_candidate)
            if result is not None:
                current = result
                changed = True
    current.note = (case.note + " | reduced").strip(" |")
    return current, state["steps"]


# ---------------------------------------------------------------------------
# transforms — each returns a smaller accepted case, or None
# ---------------------------------------------------------------------------


def _shrink_query(case: Case, try_candidate) -> Case | None:
    query = case.query
    candidates = []

    if query.where is not None:
        candidates.append(("where", None))
    if query.distinct:
        candidates.append(("distinct", False))
    if query.order_cols:
        candidates.append(("order_cols", []))
    if query.offset:
        candidates.append(("offset", 0))
    if query.limit is not None:
        candidates.append(("limit", None))
        if query.limit > 1:
            candidates.append(("limit", 1))
    if query.agg is not None and (query.columns or query.group_by):
        candidates.append(("agg", None))

    for attribute, value in candidates:
        candidate = deepcopy(case)
        setattr(candidate.query, attribute, value)
        if attribute == "order_cols":
            candidate.query.order_unique = False
        if attribute == "agg" and not candidate.query.columns:
            candidate.query.columns = list(candidate.query.group_by)
            candidate.query.group_by = []
        if try_candidate(candidate):
            return candidate

    # Drop select columns one at a time (keep at least one output).
    if len(query.columns) > 1 or (query.columns and query.agg is not None):
        for index in range(len(query.columns)):
            candidate = deepcopy(case)
            dropped = candidate.query.columns.pop(index)
            candidate.query.order_cols = [
                pair for pair in candidate.query.order_cols if pair[0] != dropped
            ]
            candidate.query.group_by = [
                c for c in candidate.query.group_by if c != dropped
            ]
            if not candidate.query.columns and candidate.query.agg is None:
                continue
            if try_candidate(candidate):
                return candidate
    return None


def _shrink_views(case: Case, try_candidate) -> Case | None:
    """Drop views from the top of the stack down.  A view another view (or
    the query) still references makes the candidate unbuildable, so the
    oracle run rejects it — no dependency tracking needed."""
    for index in reversed(range(len(case.views))):
        candidate = deepcopy(case)
        del candidate.views[index]
        if try_candidate(candidate):
            return candidate
    return None


def _shrink_rows(case: Case, try_candidate) -> Case | None:
    """ddmin-lite over each table's rows: halves first, then quarters."""
    for table_index, table in enumerate(case.tables):
        n = len(table.rows)
        if n == 0:
            continue
        for keep in _row_subsets(n):
            candidate = deepcopy(case)
            candidate.tables[table_index].rows = [table.rows[i] for i in keep]
            if try_candidate(candidate):
                return candidate
    return None


def _row_subsets(n: int):
    """Candidate row index subsets, aggressive first: empty, halves, then
    drop-one-quarter windows."""
    yield []
    if n >= 2:
        half = n // 2
        yield list(range(half))
        yield list(range(half, n))
    if n >= 4:
        quarter = max(1, n // 4)
        for start in range(0, n, quarter):
            kept = [i for i in range(n) if not (start <= i < start + quarter)]
            yield kept
    if n >= 2:
        for drop in range(n):  # final single-row polishing for small tables
            if n <= 12:
                yield [i for i in range(n) if i != drop]

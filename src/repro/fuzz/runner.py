"""The fuzzing campaign driver behind ``python -m repro fuzz``.

A campaign is fully determined by ``(seed, runs, profile)``: case ``i`` is
regenerated from the seed, so a discrepancy reported by CI reproduces
locally from the summary line alone.  Findings are minimized by the
reducer and serialized as replayable corpus files.

Campaign counters flow through the engine's own
:class:`~repro.observability.metrics.MetricsRegistry` (and therefore all
its exporters):

``fuzz.cases_generated``  cases synthesized
``fuzz.queries_run``      individual query executions across all oracle arms
``fuzz.checks.<oracle>``  per-oracle case checks
``fuzz.discrepancies``    oracle violations found (pre-reduction)
``fuzz.reduced_steps``    accepted shrink steps across all reductions
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..observability import MetricsRegistry
from .generator import Case, WorkloadGenerator
from .oracles import ORACLES, Discrepancy, _compare_arms, _run
from .reducer import reduce_case


@dataclass
class FoundBug:
    """One discrepancy: the oracle verdict plus the minimized repro."""

    case_index: int
    oracle: str
    detail: str
    case: Case
    corpus_path: str | None = None

    def summary(self) -> str:
        where = f" -> {self.corpus_path}" if self.corpus_path else ""
        return f"case {self.case_index} [{self.oracle}] {self.detail}{where}"


@dataclass
class CampaignReport:
    seed: int
    profile: str
    runs_requested: int
    cases_run: int = 0
    queries_run: int = 0
    checks: dict = field(default_factory=dict)
    bugs: list = field(default_factory=list)
    reduced_steps: int = 0
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.bugs

    def summary(self) -> str:
        return (
            f"fuzz: {self.cases_run}/{self.runs_requested} cases, "
            f"{self.queries_run} queries, {len(self.bugs)} discrepancie(s), "
            f"{self.reduced_steps} reduction step(s) "
            f"(seed {self.seed}, profile {self.profile}, {self.elapsed_s:.2f}s)"
        )


class FuzzCampaign:
    """Generate cases, run every oracle, reduce and persist the failures."""

    def __init__(
        self,
        seed: int = 0,
        profile: str = "hana",
        corpus_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
        reduce: bool = True,
        log=None,
    ):
        self.seed = seed
        self.profile = profile
        self.corpus_dir = corpus_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.reduce = reduce
        self.log = log or (lambda message: None)
        self._m_cases = self.metrics.counter("fuzz.cases_generated")
        self._m_queries = self.metrics.counter("fuzz.queries_run")
        self._m_discrepancies = self.metrics.counter("fuzz.discrepancies")
        self._m_reduced = self.metrics.counter("fuzz.reduced_steps")
        for name in ORACLES:
            self.metrics.counter(f"fuzz.checks.{name}")

    def run(
        self, runs: int = 200, time_budget_s: float | None = None
    ) -> CampaignReport:
        generator = WorkloadGenerator(seed=self.seed, profile=self.profile)
        report = CampaignReport(
            seed=self.seed, profile=self.profile, runs_requested=runs,
            checks={name: 0 for name in ORACLES},
        )
        started = time.monotonic()
        for index in range(runs):
            if time_budget_s is not None and time.monotonic() - started > time_budget_s:
                self.log(f"fuzz: time budget exhausted after {index} cases")
                break
            case = generator.case(index)
            self._m_cases.inc()
            report.cases_run += 1
            tally: dict = {}
            for oracle_name, oracle in ORACLES.items():
                found = oracle(case, tally=tally)
                report.checks[oracle_name] += 1
                self.metrics.counter(f"fuzz.checks.{oracle_name}").inc()
                if found is not None:
                    self._m_discrepancies.inc()
                    bug = self._handle_discrepancy(index, case, found, report)
                    report.bugs.append(bug)
            queries = tally.get("queries", 0)
            report.queries_run += queries
            self._m_queries.inc(queries)
        report.elapsed_s = time.monotonic() - started
        return report

    def _handle_discrepancy(
        self, index: int, case: Case, found: Discrepancy, report: CampaignReport
    ) -> FoundBug:
        self.log(f"fuzz: case {index}: {found}")
        reduced = case
        if self.reduce:
            reduced, steps = reduce_case(case, found.oracle)
            report.reduced_steps += steps
            self._m_reduced.inc(steps)
            self.log(f"fuzz: case {index}: reduced in {steps} step(s)")
        bug = FoundBug(
            case_index=index, oracle=found.oracle, detail=found.detail, case=reduced
        )
        if self.corpus_dir:
            bug.corpus_path = save_corpus_file(
                self.corpus_dir, reduced, found,
                name=f"fuzz-seed{self.seed}-case{index}-{found.oracle}.json",
            )
            self.log(f"fuzz: case {index}: corpus file {bug.corpus_path}")
        return bug


def run_fuzz(
    seed: int = 0,
    runs: int = 200,
    time_budget_s: float | None = None,
    profile: str = "hana",
    corpus_dir: str | None = None,
    metrics: MetricsRegistry | None = None,
    reduce: bool = True,
    log=None,
) -> CampaignReport:
    """One-call campaign (the CLI and CI entry point)."""
    campaign = FuzzCampaign(
        seed=seed, profile=profile, corpus_dir=corpus_dir, metrics=metrics,
        reduce=reduce, log=log,
    )
    return campaign.run(runs=runs, time_budget_s=time_budget_s)


# ---------------------------------------------------------------------------
# corpus files
# ---------------------------------------------------------------------------


def save_corpus_file(
    directory: str, case: Case, found: Discrepancy | None = None,
    name: str | None = None,
) -> str:
    """Serialize a case (plus the oracle verdict, if any) for replay."""
    os.makedirs(directory, exist_ok=True)
    payload = case.to_dict()
    if found is not None:
        payload["discrepancy"] = {"oracle": found.oracle, "detail": found.detail}
    if name is None:
        name = f"fuzz-seed{case.seed}.json"
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus_file(path: str) -> Case:
    with open(path, "r", encoding="utf-8") as handle:
        return Case.from_dict(json.load(handle))


def replay_corpus_file(path: str, tally: dict | None = None) -> list[Discrepancy]:
    """Re-run the checks for a serialized corpus entry.  An empty list
    means the historical bug (or seeded shape) is still clean.

    Entries default to ``kind == "case"`` (a fuzz case replayed through
    every oracle); ``kind == "sys_selfref"`` entries instead replay raw
    SQL against the ``sys.*`` introspection schema,
    ``kind == "qerror_probe"`` entries check the plan-feedback invariant
    (exactly one est/actual row per physical operator), and
    ``kind == "plan_cache_diff"`` entries run raw SQL against a
    plan-cached arm and a fresh-compile arm, re-sweeping after every DDL
    step.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") == "sys_selfref":
        return _replay_sys_selfref(payload, tally=tally)
    if payload.get("kind") == "qerror_probe":
        return _replay_qerror_probe(payload, tally=tally)
    if payload.get("kind") == "plan_cache_diff":
        return _replay_plan_cache_diff(payload, tally=tally)
    case = Case.from_dict(payload)
    found = []
    for oracle in ORACLES.values():
        result = oracle(case, tally=tally)
        if result is not None:
            found.append(result)
    return found


def _replay_sys_selfref(
    payload: dict, tally: dict | None = None
) -> list[Discrepancy]:
    """Self-observability oracle: a query over ``sys.query_log`` is only
    appended to the log after it finishes, so run ``i`` sees exactly
    ``i - 1`` copies of itself in its own result, and the log holds
    exactly ``i`` copies afterwards."""
    from ..database import Database

    sql = payload["sql"]
    found: list[Discrepancy] = []
    db = Database(batch_size=payload.get("batch_size", 1024))
    try:
        for statement in payload.get("setup", ()):
            db.execute(statement)
        for run in range(1, payload.get("repetitions", 2) + 1):
            result = db.query(sql)
            if tally is not None:
                tally["queries"] = tally.get("queries", 0) + 1
            seen = sum(1 for row in result.rows for value in row if value == sql)
            if seen != run - 1:
                found.append(Discrepancy(
                    "sys-selfref",
                    f"run {run} saw {seen} copies of itself in its result "
                    f"(expected {run - 1})",
                ))
            logged = sum(1 for e in db.query_log.entries() if e.sql == sql)
            if logged != run:
                found.append(Discrepancy(
                    "sys-selfref",
                    f"after run {run} the query log holds {logged} copies "
                    f"(expected {run})",
                ))
    finally:
        db.close()
    return found


def _replay_plan_cache_diff(
    payload: dict, tally: dict | None = None
) -> list[Discrepancy]:
    """Plan-cache differential over raw SQL: every query runs twice
    against a plan-cached database (the second run takes the hit path)
    and once against a fresh-compile database (``plan_cache_size=0``);
    the pairs must agree as multisets.  After every DDL step in
    ``payload["ddl"]`` — applied to both arms — the full query list
    re-sweeps, so stale cached plans surviving an invalidation show up
    as a result divergence."""
    from ..database import Database

    batch_size = payload.get("batch_size", 1024)
    found: list[Discrepancy] = []
    cached = Database(
        wal_enabled=False, batch_size=batch_size,
        plan_cache_size=payload.get("plan_cache_size", 64),
    )
    fresh = Database(
        wal_enabled=False, batch_size=batch_size, plan_cache_size=0,
    )
    try:
        for statement in payload.get("setup", ()):
            cached.execute(statement)
            fresh.execute(statement)

        def sweep(label: str) -> None:
            for sql in payload.get("queries", ()):
                _run(cached, sql, tally)  # miss / promotion run
                cached_result, cached_err = _run(cached, sql, tally)  # hit
                fresh_result, fresh_err = _run(fresh, sql, tally)
                diff = _compare_arms(
                    "plan-cache-diff", f"cached[{label}]",
                    cached_result, cached_err,
                    f"fresh[{label}]", fresh_result, fresh_err, "multiset",
                )
                if diff is not None:
                    found.append(diff)

        sweep("initial")
        for step, ddl in enumerate(payload.get("ddl", ()), start=1):
            cached.execute(ddl)
            fresh.execute(ddl)
            sweep(f"ddl-{step}")
    finally:
        cached.close()
        fresh.close()
    return found


def _replay_qerror_probe(
    payload: dict, tally: dict | None = None
) -> list[Discrepancy]:
    """Plan-feedback oracle: every physical operator of every executed
    query gets exactly one est/actual feedback row, the row indexes form
    a contiguous 0..n-1 pre-order, every operator carries an estimate,
    and every Q-error respects the >= 1.0 clamp.  Guards the est/actual
    join key (``id(op)`` through the collector) against plan-shape or
    collector regressions."""
    from ..database import Database

    found: list[Discrepancy] = []
    db = Database(batch_size=payload.get("batch_size", 1024))
    try:
        for statement in payload.get("setup", ()):
            db.execute(statement)
        for sql in payload.get("queries", ()):
            result = db.query(sql)
            if tally is not None:
                tally["queries"] = tally.get("queries", 0) + 1
            query_id = result.stats.query_id
            rows = [
                f for f in db.query_log.feedback_rows()
                if f.query_id == query_id
            ]
            expected = result.stats.operators_after
            indexes = sorted(f.op_index for f in rows)
            if indexes != list(range(expected)):
                found.append(Discrepancy(
                    "qerror-probe",
                    f"{query_id} ({sql!r}): expected one feedback row per "
                    f"operator (0..{expected - 1}), got indexes {indexes}",
                ))
                continue
            for f in rows:
                if f.est_rows is None:
                    found.append(Discrepancy(
                        "qerror-probe",
                        f"{query_id} op {f.op_index} ({f.operator}) "
                        "has no estimate",
                    ))
                elif f.qerror is None or f.qerror < 1.0:
                    found.append(Discrepancy(
                        "qerror-probe",
                        f"{query_id} op {f.op_index} ({f.operator}) "
                        f"qerror={f.qerror!r} violates the >= 1.0 clamp",
                    ))
    finally:
        db.close()
    return found

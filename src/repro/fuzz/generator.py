"""Schema-aware random workload generator for the fuzzing oracles.

Every :class:`Case` is self-contained and JSON-serializable: base tables
with their rows, an ordered VDM view stack, and one structured
:class:`QuerySpec`.  Rebuilding the database from a case is deterministic,
so any discrepancy an oracle finds is replayable from the serialized form
alone.

The generator is *biased*, not uniform: each case picks a target rewrite
rule and constructs a view stack plus query shape that provably triggers
it (see :data:`TARGETS`).  The shapes mirror the paper's patterns:

``uaj``          augmentation join with a unique / declared ``..1``
                 augmenter, query touching only anchor columns (§4.3)
``union_uaj``    augmenter is a disjoint-branch Union All (§6, Table 4)
``asj``          custom-field extension: self-join on key exposing
                 extension columns, query using them (§5.3, Fig. 8b)
``asj_union``    draft pattern: branch-id-tagged Union All on both sides
                 through the declared-intent CASE JOIN (§6.3, Fig. 13b)
``limit_aj``     paging (LIMIT/OFFSET) above a surviving augmentation
                 join (§4.4, Fig. 6)
``limit_union``  LIMIT directly above a Union All view
``mixed``        unbiased query over a random relation of the stack

Only INT and VARCHAR columns are generated, keeping row values JSON-round-
trippable without a codec.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace

from ..database import Database

#: The rule-targeting biases.  Every non-``mixed`` target guarantees that
#: executing the case's query fires at least one of the rewrite counters in
#: :data:`TARGET_FIRES` (property-tested in tests/test_fuzz_generator.py).
TARGETS = (
    "uaj",
    "union_uaj",
    "asj",
    "asj_union",
    "limit_aj",
    "limit_union",
    "mixed",
)

#: target -> rewrite-counter name prefixes that must fire (``mixed`` has no
#: guarantee).  Matched against ``QueryStats.rewrite_fires`` keys.
TARGET_FIRES: dict[str, tuple[str, ...]] = {
    "uaj": ("AJ ", "union-uaj"),
    "union_uaj": ("union-uaj",),
    "asj": ("ASJ",),
    "asj_union": ("ASJ union-augmenter",),
    "limit_aj": ("limit-pushdown-aj", "limit-pushdown-topn"),
    "limit_union": ("limit-pushdown-union",),
    "mixed": (),
}


# ---------------------------------------------------------------------------
# case model
# ---------------------------------------------------------------------------


@dataclass
class TableSpec:
    """One base table: its CREATE TABLE statement and its rows."""

    name: str
    sql: str
    rows: list[list]


@dataclass
class QuerySpec:
    """A structured SELECT over one relation, rendered by :meth:`sql`.

    Keeping the query structured (instead of a SQL string) is what makes
    the reducer tractable: shrinking steps drop clauses or columns and
    re-render, never string-edit.
    """

    source: str
    columns: list[str] = field(default_factory=list)
    #: Aggregate call: ``{"fn": "count_star"|"count"|"sum"|"min"|"max",
    #: "col": name-or-None, "alias": output-name}``.
    agg: dict | None = None
    group_by: list[str] = field(default_factory=list)
    #: One simple predicate ``{"col", "op", "value"}``; op additionally
    #: allows ``is null`` / ``is not null`` (value ignored).
    where: dict | None = None
    distinct: bool = False
    #: ORDER BY keys as ``[column, ascending]`` pairs.
    order_cols: list[list] = field(default_factory=list)
    #: True when the generator knows the order keys are unique per output
    #: row (e.g. a primary key carried 1:1 through augmentation joins) —
    #: the ordered result is then deterministic even without covering
    #: every output column.
    order_unique: bool = False
    limit: int | None = None
    offset: int = 0

    # -- rendering -----------------------------------------------------------

    def output_names(self) -> list[str]:
        names = list(self.columns)
        if self.agg is not None:
            names.append(self.agg["alias"])
        return names

    def _select_list(self) -> str:
        items = list(self.columns)
        if self.agg is not None:
            fn, col, alias = self.agg["fn"], self.agg.get("col"), self.agg["alias"]
            call = "count(*)" if fn == "count_star" else f"{fn}({col})"
            items.append(f"{call} as {alias}")
        return ", ".join(items) if items else "*"

    def _where_clause(self) -> str:
        if self.where is None:
            return ""
        col, op = self.where["col"], self.where["op"]
        if op in ("is null", "is not null"):
            return f" where {col} {op}"
        value = self.where["value"]
        if value is None:
            literal = "null"
        elif isinstance(value, str):
            escaped = value.replace("'", "''")
            literal = f"'{escaped}'"
        else:
            literal = str(value)
        return f" where {col} {op} {literal}"

    def sql(self, limited: bool = True, ordered: bool = True) -> str:
        parts = ["select "]
        if self.distinct:
            parts.append("distinct ")
        parts.append(self._select_list())
        parts.append(f" from {self.source}")
        parts.append(self._where_clause())
        if self.group_by:
            parts.append(" group by " + ", ".join(self.group_by))
        if ordered and self.order_cols:
            keys = ", ".join(
                f"{col}{'' if asc else ' desc'}" for col, asc in self.order_cols
            )
            parts.append(f" order by {keys}")
        if limited and self.limit is not None:
            parts.append(f" limit {self.limit}")
            if self.offset:
                parts.append(f" offset {self.offset}")
        return "".join(parts)

    def count_sql(self) -> str:
        """COUNT(*) over the unlimited, unordered body (derived table)."""
        return f"select count(*) from ({self.sql(limited=False, ordered=False)}) fz"


@dataclass
class Case:
    """A complete replayable workload: schema + data + view stack + query."""

    seed: int
    tables: list[TableSpec]
    views: list[str]
    query: QuerySpec
    targets: tuple[str, ...] = ()
    profile: str = "hana"
    note: str = ""

    FORMAT = 1

    def build(
        self, batch_size: int = 1024, profile: str | None = None,
        vectorized: bool = True, plan_cache_size: int = 128,
    ) -> Database:
        """A fresh database loaded with this case's schema, rows, and views."""
        db = Database(
            profile=profile or self.profile, wal_enabled=False,
            batch_size=batch_size, vectorized=vectorized,
            plan_cache_size=plan_cache_size,
        )
        for table in self.tables:
            db.execute(table.sql)
            if table.rows:
                db.bulk_load(table.name, table.rows)
        for view_sql in self.views:
            db.execute(view_sql)
        return db

    def sql(self, **kwargs) -> str:
        return self.query.sql(**kwargs)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": self.FORMAT,
            "seed": self.seed,
            "profile": self.profile,
            "targets": list(self.targets),
            "note": self.note,
            "tables": [asdict(t) for t in self.tables],
            "views": list(self.views),
            "query": asdict(self.query),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Case":
        if data.get("format") != cls.FORMAT:
            raise ValueError(
                f"unsupported corpus format {data.get('format')!r} "
                f"(expected {cls.FORMAT})"
            )
        return cls(
            seed=data.get("seed", 0),
            tables=[TableSpec(**t) for t in data["tables"]],
            views=list(data["views"]),
            query=QuerySpec(**data["query"]),
            targets=tuple(data.get("targets", ())),
            profile=data.get("profile", "hana"),
            note=data.get("note", ""),
        )


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


@dataclass
class _Relation:
    """What the query generator may do with one relation of the stack."""

    name: str
    anchor_cols: list[str]          # columns the query may use freely
    aug_cols: list[str]             # augmenter columns (UAJ bias excludes them)
    int_cols: set[str]
    nullable_cols: set[str]
    unique_col: str | None          # a column unique per output row, if any


_TAGS = ["t0", "t1", "t2", "t3", "t4"]


class WorkloadGenerator:
    """Deterministic per-(seed, index) case factory."""

    def __init__(self, seed: int = 0, profile: str = "hana"):
        self.seed = seed
        self.profile = profile

    def case(self, index: int) -> Case:
        # String seeding is PYTHONHASHSEED-independent (sha512-based), so a
        # (seed, index) pair always regenerates the same case.
        rng = random.Random(f"repro-fuzz:{self.seed}:{index}")
        target = rng.choice(TARGETS)
        return self._build_case(rng, target, index)

    def cases(self, count: int):
        for index in range(count):
            yield self.case(index)

    # -- schema --------------------------------------------------------------

    def _anchor_table(self, rng: random.Random, dim_n: int) -> TableSpec:
        n = rng.randint(12, 45)
        rows = []
        for i in range(n):
            rows.append(
                [
                    i,                                               # id (pk)
                    rng.randrange(dim_n + 3),                        # k1, some miss
                    None if rng.random() < 0.25 else rng.randrange(dim_n + 3),
                    rng.randrange(5),                                # grp
                    None if rng.random() < 0.15 else rng.randrange(25),
                    None if rng.random() < 0.2 else rng.choice(_TAGS),
                ]
            )
        return TableSpec(
            "fct",
            "create table fct (id int primary key, k1 int not null, k2 int, "
            "grp int not null, val int, tag varchar(8))",
            rows,
        )

    def _dim_table(self, rng: random.Random, name: str, dim_n: int) -> TableSpec:
        rows = [
            [
                k,
                None if rng.random() < 0.1 else rng.randrange(50),
                None if rng.random() < 0.2 else rng.choice(_TAGS),
            ]
            for k in range(dim_n)
        ]
        return TableSpec(
            name,
            f"create table {name} (k int primary key, d_val int, d_tag varchar(8))",
            rows,
        )

    def _draft_pair(self, rng: random.Random) -> list[TableSpec]:
        active_n = rng.randint(5, 18)
        draft_n = rng.randint(0, 6)
        make = lambda key: [  # noqa: E731 — tiny row factory
            key,
            None if rng.random() < 0.15 else rng.randrange(30),
            rng.randrange(100),
        ]
        return [
            TableSpec(
                "act",
                "create table act (key int primary key, a int, ext int)",
                [make(k) for k in range(active_n)],
            ),
            TableSpec(
                "drf",
                "create table drf (key int primary key, a int, ext int)",
                [make(k) for k in range(active_n, active_n + draft_n)],
            ),
        ]

    # -- view stacks ---------------------------------------------------------

    def _build_case(self, rng: random.Random, target: str, index: int) -> Case:
        dim_n = rng.randint(6, 14)
        tables = [self._anchor_table(rng, dim_n)]
        views: list[str] = []

        # Layer 0 of every stack: a plain projection view over the anchor
        # (VDM interface view), occasionally with its own restriction.
        base_where = " where grp < 4" if rng.random() < 0.3 else ""
        views.append(
            "create view b0 as select id, k1, k2, grp, val, tag from fct" + base_where
        )

        if target in ("uaj", "limit_aj"):
            tables.append(self._dim_table(rng, "dim1", dim_n))
            relation = self._stack_uaj(rng, views)
        elif target == "union_uaj":
            relation = self._stack_union_uaj(rng, views)
        elif target == "asj":
            relation = self._stack_asj(rng, views)
        elif target == "asj_union":
            tables.extend(self._draft_pair(rng))
            relation = self._stack_asj_union(rng, views)
        elif target == "limit_union":
            relation = self._stack_union_view(rng, views)
        else:  # mixed: random stack, query anywhere
            tables.append(self._dim_table(rng, "dim1", dim_n))
            relation = self._stack_mixed(rng, views)

        query = self._gen_query(rng, relation, target)
        targets = () if target == "mixed" else (target,)
        return Case(
            seed=self.seed,
            tables=tables,
            views=views,
            query=query,
            targets=targets,
            profile=self.profile,
            note=f"generated case {index} (target: {target})",
        )

    def _stack_uaj(self, rng: random.Random, views: list[str]) -> _Relation:
        """Augmentation join on a unique (and sometimes declared ``..1``)
        augmenter — the Fig. 5 shape."""
        join_kw = rng.choice(["left outer join", "left outer many to one join"])
        views.append(
            f"create view av as select b.id, b.grp, b.val, b.tag, "
            f"d.d_val as d_val, d.d_tag as d_tag "
            f"from b0 b {join_kw} dim1 d on b.k1 = d.k"
        )
        return _Relation(
            name="av",
            anchor_cols=["id", "grp", "val", "tag"],
            aug_cols=["d_val", "d_tag"],
            int_cols={"id", "grp", "val", "d_val"},
            nullable_cols={"val", "tag", "d_val", "d_tag"},
            unique_col="id",
        )

    def _stack_union_uaj(self, rng: random.Random, views: list[str]) -> _Relation:
        """Augmenter is a Union All with provably disjoint branches
        (Table 4: unique-through-union via disjoint subsets)."""
        split = rng.randint(1, 4)
        views.append(
            f"create view uu as select o.id, o.grp, o.val, u.val as u_val "
            f"from b0 o left outer join "
            f"(select id, val from fct where grp < {split} "
            f"union all select id, val from fct where grp >= {split}) u "
            f"on o.id = u.id"
        )
        return _Relation(
            name="uu",
            anchor_cols=["id", "grp", "val"],
            aug_cols=["u_val"],
            int_cols={"id", "grp", "val", "u_val"},
            nullable_cols={"val", "u_val"},
            unique_col="id",
        )

    def _stack_asj(self, rng: random.Random, views: list[str]) -> _Relation:
        """Custom-field extension (Fig. 8b): a stable view projecting the
        key, extended by an augmentation self-join back to the base table."""
        stable_where = " where val is not null" if rng.random() < 0.3 else ""
        views.append("create view s0 as select id, grp, val from b0" + stable_where)
        views.append(
            "create view e0 as select v.id, v.grp, v.val, "
            "x.tag as ext_tag, x.k1 as ext_k1 "
            "from s0 v left outer join fct x on v.id = x.id"
        )
        return _Relation(
            name="e0",
            anchor_cols=["id", "grp", "val"],
            aug_cols=["ext_tag", "ext_k1"],
            int_cols={"id", "grp", "val", "ext_k1"},
            nullable_cols={"val", "ext_tag"},
            unique_col="id",
        )

    def _stack_asj_union(self, rng: random.Random, views: list[str]) -> _Relation:
        """Draft-pattern extension (Fig. 13b): branch-id-tagged Union All on
        both sides of a declared-intent CASE JOIN."""
        views.append(
            "create view d0 as select 1 as bid, key, a from act "
            "union all select 2 as bid, key, a from drf"
        )
        views.append(
            "create view e1 as select v.bid, v.key, v.a, x.ext as ext "
            "from d0 v case join "
            "(select 1 as bidu, key, ext from act "
            "union all select 2 as bidu, key, ext from drf) x "
            "on v.bid = x.bidu and v.key = x.key"
        )
        return _Relation(
            name="e1",
            anchor_cols=["bid", "key", "a"],
            aug_cols=["ext"],
            int_cols={"bid", "key", "a", "ext"},
            nullable_cols={"a"},
            unique_col="key",
        )

    def _stack_union_view(self, rng: random.Random, views: list[str]) -> _Relation:
        split = rng.randint(1, 4)
        views.append(
            f"create view uv as "
            f"select id, val from fct where grp < {split} "
            f"union all select id, val from fct where grp >= {split}"
        )
        return _Relation(
            name="uv",
            anchor_cols=["id", "val"],
            aug_cols=[],
            int_cols={"id", "val"},
            nullable_cols={"val"},
            unique_col="id",
        )

    def _stack_mixed(self, rng: random.Random, views: list[str]) -> _Relation:
        """An arbitrary multi-layer stack; the query may land anywhere."""
        roll = rng.random()
        if roll < 0.4:
            relation = self._stack_uaj(rng, views)
            # Query may use every column, augmenter included.
            relation = replace(
                relation,
                anchor_cols=relation.anchor_cols + relation.aug_cols,
                aug_cols=[],
            )
        elif roll < 0.6:
            relation = self._stack_asj(rng, views)
            relation = replace(
                relation,
                anchor_cols=relation.anchor_cols + relation.aug_cols,
                aug_cols=[],
            )
        elif roll < 0.8:
            relation = _Relation(
                name="b0",
                anchor_cols=["id", "k1", "k2", "grp", "val", "tag"],
                aug_cols=[],
                int_cols={"id", "k1", "k2", "grp", "val"},
                nullable_cols={"k2", "val", "tag"},
                unique_col="id",
            )
        else:
            relation = _Relation(
                name="fct",
                anchor_cols=["id", "k1", "k2", "grp", "val", "tag"],
                aug_cols=[],
                int_cols={"id", "k1", "k2", "grp", "val"},
                nullable_cols={"k2", "val", "tag"},
                unique_col="id",
            )
        return relation

    # -- queries -------------------------------------------------------------

    def _gen_where(self, rng: random.Random, relation: _Relation,
                   allowed: list[str]) -> dict | None:
        if not allowed or rng.random() < 0.45:
            return None
        col = rng.choice(allowed)
        if col in relation.int_cols:
            op = rng.choice(["=", "<", "<=", ">", ">=", "<>"])
            return {"col": col, "op": op, "value": rng.randrange(30)}
        if col in relation.nullable_cols and rng.random() < 0.4:
            return {"col": col, "op": rng.choice(["is null", "is not null"]),
                    "value": None}
        return {"col": col, "op": rng.choice(["=", "<>"]),
                "value": rng.choice(_TAGS)}

    def _gen_query(self, rng: random.Random, relation: _Relation,
                   target: str) -> QuerySpec:
        anchor = relation.anchor_cols
        if target in ("uaj", "union_uaj"):
            return self._query_anchor_only(rng, relation)
        if target in ("asj", "asj_union"):
            return self._query_uses_augmenter(rng, relation, paging=False)
        if target == "limit_aj":
            return self._query_uses_augmenter(rng, relation, paging=True)
        if target == "limit_union":
            return QuerySpec(
                source=relation.name,
                columns=list(anchor),
                limit=rng.randint(1, 12),
                offset=rng.choice([0, 0, 0, rng.randint(1, 5)]),
            )
        return self._query_mixed(rng, relation)

    def _query_anchor_only(self, rng: random.Random,
                           relation: _Relation) -> QuerySpec:
        """Never touch an augmenter column: the join must be eliminated."""
        anchor = relation.anchor_cols
        where = self._gen_where(rng, relation, anchor)
        roll = rng.random()
        if roll < 0.2:  # global aggregate: COUNT(*) prunes everything
            fn = rng.choice(["count_star", "count", "sum", "min", "max"])
            col = None if fn == "count_star" else rng.choice(
                [c for c in anchor if c in relation.int_cols]
            )
            return QuerySpec(
                source=relation.name,
                agg={"fn": fn, "col": col, "alias": "agg0"},
                where=where,
            )
        if roll < 0.4 and "grp" in anchor:  # grouped aggregate
            fn = rng.choice(["count_star", "sum"])
            col = None if fn == "count_star" else rng.choice(
                [c for c in anchor if c in relation.int_cols]
            )
            return QuerySpec(
                source=relation.name,
                columns=["grp"],
                agg={"fn": fn, "col": col, "alias": "agg0"},
                group_by=["grp"],
                where=where,
                order_cols=[["grp", True]],
                order_unique=True,  # one output row per group key
            )
        columns = [c for c in anchor if rng.random() < 0.7] or [anchor[0]]
        spec = QuerySpec(
            source=relation.name,
            columns=columns,
            where=where,
            distinct=rng.random() < 0.2,
        )
        self._maybe_order_and_limit(rng, spec, relation)
        return spec

    def _query_uses_augmenter(self, rng: random.Random, relation: _Relation,
                              paging: bool) -> QuerySpec:
        """At least one augmenter column in the select list: the join
        survives, and the rewrite under test must still preserve results."""
        aug_pick = [c for c in relation.aug_cols if rng.random() < 0.6]
        if not aug_pick:
            aug_pick = [rng.choice(relation.aug_cols)]
        columns = [c for c in relation.anchor_cols if rng.random() < 0.6]
        if relation.unique_col and relation.unique_col not in columns:
            columns.insert(0, relation.unique_col)
        columns += aug_pick
        where = self._gen_where(rng, relation, relation.anchor_cols)
        spec = QuerySpec(source=relation.name, columns=columns, where=where)
        if paging:
            spec.limit = rng.randint(1, 12)
            spec.offset = rng.choice([0, 0, rng.randint(1, 5)])
            if rng.random() < 0.5 and relation.unique_col in columns:
                # Top-N pushdown: sort keys all from the anchor, unique.
                spec.order_cols = [[relation.unique_col, rng.random() < 0.8]]
                spec.order_unique = True
        else:
            self._maybe_order_and_limit(rng, spec, relation)
        return spec

    def _query_mixed(self, rng: random.Random, relation: _Relation) -> QuerySpec:
        anchor = relation.anchor_cols
        where = self._gen_where(rng, relation, anchor)
        roll = rng.random()
        if roll < 0.15:
            fn = rng.choice(["count_star", "count", "sum", "min", "max"])
            col = None if fn == "count_star" else rng.choice(
                [c for c in anchor if c in relation.int_cols]
            )
            return QuerySpec(
                source=relation.name,
                agg={"fn": fn, "col": col, "alias": "agg0"},
                where=where,
            )
        if roll < 0.3 and "grp" in anchor:
            fn = rng.choice(["count_star", "sum", "min"])
            col = None if fn == "count_star" else rng.choice(
                [c for c in anchor if c in relation.int_cols]
            )
            return QuerySpec(
                source=relation.name,
                columns=["grp"],
                agg={"fn": fn, "col": col, "alias": "agg0"},
                group_by=["grp"],
                where=where,
                order_cols=[["grp", rng.random() < 0.8]],
                order_unique=True,
            )
        columns = [c for c in anchor if rng.random() < 0.6] or [rng.choice(anchor)]
        spec = QuerySpec(
            source=relation.name,
            columns=columns,
            where=where,
            distinct=rng.random() < 0.25,
        )
        self._maybe_order_and_limit(rng, spec, relation)
        return spec

    def _maybe_order_and_limit(self, rng: random.Random, spec: QuerySpec,
                               relation: _Relation) -> None:
        """Attach ORDER BY / LIMIT so limited results stay deterministic:
        either the order covers every output column, or it starts with a
        column the generator knows is unique per output row."""
        roll = rng.random()
        if roll < 0.35:
            spec.order_cols = [[c, rng.random() < 0.75] for c in spec.columns]
        elif roll < 0.55 and relation.unique_col in spec.columns and not spec.distinct:
            spec.order_cols = [[relation.unique_col, rng.random() < 0.75]]
            spec.order_unique = True
        if rng.random() < 0.4:
            spec.limit = rng.randint(1, 15)
            spec.offset = rng.choice([0, 0, 0, rng.randint(1, 4)])

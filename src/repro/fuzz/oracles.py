"""The three correctness oracles run over every generated case.

All oracles reduce to comparing row sets produced by *different plans for
the same semantics*; how they compare depends on what the query promises:

``ordered``   ORDER BY covers every output column, or starts with a key
              the generator knows is unique per row — the exact row
              *sequence* must match.
``multiset``  no LIMIT (or no ambiguity): the row *multiset* must match;
              plans may emit rows in any order.
``subset``    LIMIT without a determinizing ORDER BY: any plan may pick
              any n rows, so only ``result ⊆ unlimited`` plus the row
              count are checkable (the NoREC-style weakening).

An execution *error* in one arm but not the other is always a discrepancy;
the same error class in both arms is not (the case is then simply outside
the engine's supported surface, and the generator test keeps that set
empty).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..errors import ReproError
from .generator import Case

#: batch sizes exercised by the batch-size metamorphic oracle: row-at-a-time,
#: the default, and effectively whole-table materialization.
BATCH_SIZES = (1, 1024, 1_000_000)


@dataclass
class Discrepancy:
    """One oracle violation, with enough detail to triage from the log."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


def comparison_mode(case: Case) -> str:
    """``ordered`` / ``multiset`` / ``subset`` for this case's query."""
    query = case.query
    if query.order_cols:
        ordered_names = {col for col, _asc in query.order_cols}
        if query.order_unique or ordered_names >= set(query.output_names()):
            return "ordered"
    if query.limit is not None:
        return "subset"
    return "multiset"


def _reprs(rows) -> list[str]:
    return [repr(tuple(row)) for row in rows]


def _diff_multiset(a_rows, b_rows) -> str | None:
    a, b = Counter(_reprs(a_rows)), Counter(_reprs(b_rows))
    if a == b:
        return None
    only_a = list((a - b).elements())[:3]
    only_b = list((b - a).elements())[:3]
    return f"only in first: {only_a}; only in second: {only_b}"


def _diff_ordered(a_rows, b_rows) -> str | None:
    a, b = _reprs(a_rows), _reprs(b_rows)
    if a == b:
        return None
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"row {i} differs: {x} vs {y}"
    return f"row counts differ: {len(a)} vs {len(b)}"


def _run(db, sql, tally: dict | None = None, **kwargs):
    """Run one query, bumping the shared query tally; engine errors become
    a ``(None, error)`` pair so callers can cross-check arms."""
    if tally is not None:
        tally["queries"] = tally.get("queries", 0) + 1
    try:
        return db.query(sql, **kwargs), None
    except ReproError as exc:
        return None, f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 — engine crash = finding, not abort
        return None, f"crash {type(exc).__name__}: {exc}"


def _compare_arms(oracle: str, label_a: str, result_a, error_a,
                  label_b: str, result_b, error_b, mode: str) -> Discrepancy | None:
    if error_a or error_b:
        if error_a == error_b:
            return None  # both arms rejected the query identically
        return Discrepancy(
            oracle,
            f"{label_a}: {error_a or 'ok'} | {label_b}: {error_b or 'ok'}",
        )
    diff = (
        _diff_ordered(result_a.rows, result_b.rows)
        if mode == "ordered"
        else _diff_multiset(result_a.rows, result_b.rows)
    )
    if diff is None:
        return None
    return Discrepancy(oracle, f"{label_a} vs {label_b}: {diff}")


# ---------------------------------------------------------------------------
# oracle 1: rewrite differential (optimizer on vs. off)
# ---------------------------------------------------------------------------


def run_rewrite_differential(case: Case, tally: dict | None = None) -> Discrepancy | None:
    """Optimized and unoptimized plans must agree — the central §4-§6 claim.

    For ``subset``-mode queries the limited results are not comparable
    directly; the *unlimited* body is compared instead (still covering the
    UAJ/ASJ/union rewrites), and the limited run is checked for row count
    and containment in the unoptimized unlimited result — exactly the part
    of limit pushdown that is promised.
    """
    oracle = "rewrite-differential"
    mode = comparison_mode(case)
    db = case.build()
    sql = case.sql()
    if mode != "subset":
        optimized, err_o = _run(db, sql, tally)
        baseline, err_b = _run(db, sql, tally, optimize=False)
        return _compare_arms(oracle, "optimized", optimized, err_o,
                             "unoptimized", baseline, err_b, mode)
    body = case.sql(limited=False)
    optimized, err_o = _run(db, body, tally)
    baseline, err_b = _run(db, body, tally, optimize=False)
    found = _compare_arms(oracle, "optimized", optimized, err_o,
                          "unoptimized(unlimited)", baseline, err_b, "multiset")
    if found is not None:
        return found
    limited, err_l = _run(db, sql, tally)
    if err_l:
        return Discrepancy(oracle, f"limited run failed: {err_l}")
    query = case.query
    total = len(baseline.rows)
    expected = max(0, total - query.offset)
    if query.limit is not None:
        expected = min(query.limit, expected)
    if len(limited.rows) != expected:
        return Discrepancy(
            oracle,
            f"LIMIT {query.limit} OFFSET {query.offset} returned "
            f"{len(limited.rows)} rows, expected {expected} of {total}",
        )
    overflow = Counter(_reprs(limited.rows)) - Counter(_reprs(baseline.rows))
    if overflow:
        return Discrepancy(
            oracle,
            f"limited rows not in unlimited result: "
            f"{list(overflow.elements())[:3]}",
        )
    return None


# ---------------------------------------------------------------------------
# oracle 2: batch-size metamorphic
# ---------------------------------------------------------------------------


def run_batch_metamorphic(
    case: Case, sizes=BATCH_SIZES, tally: dict | None = None
) -> Discrepancy | None:
    """The streaming executor's batch size must never change an answer:
    batch_size=1 (row-at-a-time), the 1024 default, and a whole-table batch
    all execute the same optimized plan."""
    oracle = "batch-metamorphic"
    mode = comparison_mode(case)
    # Subset-mode queries are nondeterministic across *plans* but each batch
    # size runs the SAME optimized plan; still, early-termination order is a
    # plan-internal detail, so compare their unlimited bodies and counts.
    sql = case.sql() if mode != "subset" else case.sql(limited=False)
    compare_as = mode if mode != "subset" else "multiset"
    reference = None
    reference_error = None
    limited_counts: list[tuple[int, int]] = []
    for size in sizes:
        db = case.build(batch_size=size)
        result, error = _run(db, sql, tally)
        if reference is None and reference_error is None:
            reference, reference_error = result, error
            reference_size = size
        else:
            found = _compare_arms(
                oracle, f"batch={reference_size}", reference, reference_error,
                f"batch={size}", result, error, compare_as,
            )
            if found is not None:
                return found
        if mode == "subset" and error is None:
            limited, limited_error = _run(db, case.sql(), tally)
            if limited_error:
                return Discrepancy(
                    oracle, f"batch={size} limited run failed: {limited_error}"
                )
            limited_counts.append((size, len(limited.rows)))
    if len({count for _size, count in limited_counts}) > 1:
        return Discrepancy(
            oracle, f"limited row counts differ across batch sizes: {limited_counts}"
        )
    return None


# ---------------------------------------------------------------------------
# oracle 3: limit / cardinality metamorphic
# ---------------------------------------------------------------------------


def run_limit_metamorphic(case: Case, tally: dict | None = None) -> Discrepancy | None:
    """LIMIT n must return the right number of rows, all drawn from the
    unlimited result; COUNT(*) over the body must agree with the optimizer
    off, with it on, and with the materialized row count (TLP-style
    cardinality cross-check over UAJ-eliminated plans)."""
    oracle = "limit-metamorphic"
    db = case.build()
    query = case.query
    body = case.sql(limited=False)
    unlimited, err_u = _run(db, body, tally)
    if err_u:
        return Discrepancy(oracle, f"unlimited body failed: {err_u}")
    total = len(unlimited.rows)

    count_sql = case.query.count_sql()
    count_opt, err_co = _run(db, count_sql, tally)
    count_raw, err_cr = _run(db, count_sql, tally, optimize=False)
    if err_co or err_cr:
        return Discrepancy(
            oracle,
            f"count(*) failed: optimized={err_co or 'ok'} "
            f"unoptimized={err_cr or 'ok'}",
        )
    if not (count_opt.scalar() == count_raw.scalar() == total):
        return Discrepancy(
            oracle,
            f"COUNT(*) disagreement: optimized={count_opt.scalar()} "
            f"unoptimized={count_raw.scalar()} materialized={total}",
        )

    if query.limit is None:
        return None
    limited, err_l = _run(db, case.sql(), tally)
    if err_l:
        return Discrepancy(oracle, f"limited query failed: {err_l}")
    expected = min(query.limit, max(0, total - query.offset))
    if len(limited.rows) != expected:
        return Discrepancy(
            oracle,
            f"LIMIT {query.limit} OFFSET {query.offset} returned "
            f"{len(limited.rows)} rows, expected {expected} of {total}",
        )
    overflow = Counter(_reprs(limited.rows)) - Counter(_reprs(unlimited.rows))
    if overflow:
        return Discrepancy(
            oracle,
            f"limited rows not in unlimited result: "
            f"{list(overflow.elements())[:3]}",
        )
    if comparison_mode(case) == "ordered":
        # A determinizing ORDER BY makes the page itself predictable: it
        # must equal the corresponding slice of the ordered unlimited run.
        start = query.offset
        window = unlimited.rows[start:start + query.limit]
        diff = _diff_ordered(limited.rows, window)
        if diff is not None:
            return Discrepancy(oracle, f"page mismatch vs unlimited slice: {diff}")
    return None


# ---------------------------------------------------------------------------
# oracle 4: vectorized / scalar differential
# ---------------------------------------------------------------------------


def run_vectorized_differential(
    case: Case, tally: dict | None = None
) -> Discrepancy | None:
    """The vectorized kernels must be invisible: a database with kernels
    enabled (the default) and one forced onto the row-at-a-time path
    (``Database(vectorized=False)``) run the same optimized plan and must
    produce identical results — including identical *errors* and identical
    value representations (the comparison is over ``repr`` tuples, so an
    int that becomes a float in one arm is a finding)."""
    oracle = "vectorized-differential"
    mode = comparison_mode(case)
    vec_db = case.build()
    row_db = case.build(vectorized=False)
    if mode != "subset":
        sql = case.sql()
        vec, err_v = _run(vec_db, sql, tally)
        row, err_r = _run(row_db, sql, tally)
        return _compare_arms(oracle, "vectorized", vec, err_v,
                             "scalar", row, err_r, mode)
    # LIMIT without a determinizing ORDER BY: both arms execute the same
    # plan, but early termination makes the kept rows a plan-internal
    # detail; compare the unlimited bodies plus limited-run row counts.
    body = case.sql(limited=False)
    vec, err_v = _run(vec_db, body, tally)
    row, err_r = _run(row_db, body, tally)
    found = _compare_arms(oracle, "vectorized", vec, err_v,
                          "scalar", row, err_r, "multiset")
    if found is not None or err_v or err_r:
        return found
    limited_v, err_lv = _run(vec_db, case.sql(), tally)
    limited_r, err_lr = _run(row_db, case.sql(), tally)
    if err_lv or err_lr:
        if err_lv == err_lr:
            return None
        return Discrepancy(
            oracle,
            f"limited vectorized: {err_lv or 'ok'} | "
            f"limited scalar: {err_lr or 'ok'}",
        )
    if len(limited_v.rows) != len(limited_r.rows):
        return Discrepancy(
            oracle,
            f"limited row counts differ: vectorized={len(limited_v.rows)} "
            f"scalar={len(limited_r.rows)}",
        )
    overflow = Counter(_reprs(limited_v.rows)) - Counter(_reprs(vec.rows))
    if overflow:
        return Discrepancy(
            oracle,
            f"vectorized limited rows not in unlimited result: "
            f"{list(overflow.elements())[:3]}",
        )
    return None


# ---------------------------------------------------------------------------
# oracle 5: plan-cache differential
# ---------------------------------------------------------------------------


def run_plan_cache_differential(
    case: Case, tally: dict | None = None
) -> Discrepancy | None:
    """A plan served from the plan cache must be indistinguishable from a
    fresh compile.  One arm keeps a plan cache (so the same statement runs
    as miss, then promotion, then hit), the other compiles every time
    (``plan_cache_size=0``); every round must agree.  Then the cache's
    *invalidation* precision is exercised: a view deploy, a view drop, and
    an optimizer-profile change — each applied to both arms — must leave
    the cached arm serving correct (re-validated or re-compiled) plans."""
    oracle = "plan-cache-differential"
    mode = comparison_mode(case)
    cached = case.build(plan_cache_size=64)
    fresh = case.build(plan_cache_size=0)
    sql = case.sql() if mode != "subset" else case.sql(limited=False)
    compare_as = mode if mode != "subset" else "multiset"

    def compare(label: str) -> Discrepancy | None:
        cached_result, cached_err = _run(cached, sql, tally)
        fresh_result, fresh_err = _run(fresh, sql, tally)
        return _compare_arms(
            oracle, f"cached[{label}]", cached_result, cached_err,
            f"fresh[{label}]", fresh_result, fresh_err, compare_as,
        )

    for label in ("miss", "promote", "hit"):
        found = compare(label)
        if found is not None:
            return found
    anchor = case.tables[0].name
    for db in (cached, fresh):
        db.execute(f"create view pc_probe_v as select * from {anchor}")
    found = compare("view-deploy")
    if found is not None:
        return found
    for db in (cached, fresh):
        db.execute("drop view pc_probe_v")
    found = compare("view-drop")
    if found is not None:
        return found
    profile = "postgres" if case.profile != "postgres" else "hana"
    for db in (cached, fresh):
        db.set_profile(profile)
    return compare("profile-change")


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------

ORACLES = {
    "rewrite-differential": run_rewrite_differential,
    "batch-metamorphic": run_batch_metamorphic,
    "limit-metamorphic": run_limit_metamorphic,
    "vectorized-differential": run_vectorized_differential,
    "plan-cache-differential": run_plan_cache_differential,
}


def run_all_oracles(case: Case, tally: dict | None = None) -> list[Discrepancy]:
    """Every oracle over one case; empty list = the case is clean."""
    found = []
    for oracle in ORACLES.values():
        result = oracle(case, tally=tally)
        if result is not None:
            found.append(result)
    return found

"""Reporting helpers for the benchmark harness.

Every benchmark regenerating a paper artifact writes a plain-text report to
``benchmarks/results/<name>.txt`` (and echoes it) so EXPERIMENTS.md can
quote the measured output next to the paper's numbers.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def write_report(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(f"\n[{name}]\n{text}")
    return path


def format_matrix(
    title: str,
    row_names: Sequence[str],
    col_names: Sequence[str],
    observed: Sequence[str],
    expected: Sequence[str],
) -> str:
    """Render an observed-vs-paper capability matrix."""
    width = max(len(r) for r in row_names) + 2
    lines = [title, ""]
    header = " " * width + "".join(f"{c:>10}" for c in col_names) + "   paper  status"
    lines.append(header)
    for name, got, want in zip(row_names, observed, expected):
        cells = "".join(f"{c:>10}" for c in got)
        status = "match" if got == want else f"MISMATCH (expected {want})"
        lines.append(f"{name:<{width}}{cells}   {want:>5}  {status}")
    all_match = all(g == w for g, w in zip(observed, expected))
    lines.append("")
    lines.append(
        "RESULT: matrix reproduced cell-for-cell"
        if all_match
        else "RESULT: DEVIATION from the paper's matrix"
    )
    return "\n".join(lines)

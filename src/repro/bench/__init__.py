"""Benchmark support: reproduced-artifact reporting and perf history."""

from .reporting import format_matrix, write_report  # noqa: F401
from .history import (  # noqa: F401
    DEFAULT_HISTORY,
    DEFAULT_THRESHOLD,
    append_run,
    diff_last_two,
    load_history,
    summarize_benchmarks,
)

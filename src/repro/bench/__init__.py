"""Benchmark support: reproduced-artifact reporting."""

from .reporting import format_matrix, write_report  # noqa: F401

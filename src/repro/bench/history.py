"""Performance history: machine-readable benchmark summaries across runs.

Every ``benchmarks/bench_*.py`` session appends one entry to
``benchmarks/results/BENCH_history.json`` (wired in
``benchmarks/conftest.py``): per-benchmark medians plus engine-level
aggregates (rewrite-fire counts, query/operator tallies) pulled from the
session databases' metrics registries.  ``python -m repro bench-diff``
compares the last two entries and flags median regressions beyond a
threshold (default 20%), which is how performance drift between PRs
becomes visible instead of anecdotal.

History entry shape::

    {
      "run_at": "2026-08-05T12:34:56+00:00",
      "argv": ["benchmarks/bench_table1_uaj.py", ...],
      "benchmarks": {
        "bench_table1_uaj.py::test_uaj1_execution_optimized": {
          "median_s": 0.0021, "mean_s": 0.0022, "rounds": 35
        }, ...
      },
      "rewrites": {"AJ 2a": 12, ...},
      "queries_executed": 57,
      "operators": {"before_mean": 9.5, "after_mean": 4.1}
    }

Timing-disabled (smoke) runs record ``median_s: null`` — the file stays
well-formed and ``bench-diff`` skips those pairs.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from dataclasses import dataclass

DEFAULT_HISTORY = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks" / "results" / "BENCH_history.json"
)
DEFAULT_THRESHOLD = 0.20
MAX_ENTRIES = 200          # ring-buffer the file itself


def load_history(path: "pathlib.Path | str" = DEFAULT_HISTORY) -> list[dict]:
    path = pathlib.Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"{path}: history must be a JSON list")
    return data


def append_run(entry: dict, path: "pathlib.Path | str" = DEFAULT_HISTORY) -> list[dict]:
    """Append one run entry (stamping ``run_at`` if absent); returns the
    full history."""
    path = pathlib.Path(path)
    history = load_history(path)
    if "run_at" not in entry:
        entry = {
            "run_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            **entry,
        }
    history.append(entry)
    history = history[-MAX_ENTRIES:]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=1, default=str) + "\n",
                    encoding="utf-8")
    return history


def summarize_benchmarks(benchmarks) -> dict[str, dict]:
    """pytest-benchmark fixtures -> {fullname: {median_s, mean_s, rounds}}.

    Accepts the session's ``benchmarks`` list; entries without stats
    (``--benchmark-disable`` smoke runs) record null timings.
    """
    out: dict[str, dict] = {}
    for bench in benchmarks:
        name = getattr(bench, "fullname", None) or getattr(bench, "name", "?")
        stats = getattr(bench, "stats", None)
        # pytest-benchmark's Metadata exposes Stats directly as .stats;
        # older layouts nested it one level deeper.
        if stats is not None and not hasattr(stats, "data"):
            stats = getattr(stats, "stats", None)
        if stats is not None and getattr(stats, "data", None):
            out[name] = {
                "median_s": stats.median,
                "mean_s": stats.mean,
                "rounds": len(stats.data),
            }
        else:
            out[name] = {"median_s": None, "mean_s": None, "rounds": 0}
        # Benchmark-computed figures (QPS, latency percentiles, ...) ride
        # along so history diffs can show more than wall-clock medians.
        extra = dict(getattr(bench, "extra_info", None) or {})
        if extra:
            out[name]["extra_info"] = extra
    return out


@dataclass
class BenchDelta:
    """One benchmark compared across the last two runs."""

    name: str
    old_s: float
    new_s: float

    @property
    def ratio(self) -> float:
        return self.new_s / self.old_s if self.old_s else float("inf")

    @property
    def delta_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0


@dataclass
class DiffReport:
    """bench-diff outcome: regressions/improvements between two entries."""

    old_run_at: str
    new_run_at: str
    deltas: list[BenchDelta]
    threshold: float
    skipped: list[str]          # no timing data in one of the runs

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.ratio > 1.0 + self.threshold]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.ratio < 1.0 - self.threshold]

    def render(self) -> str:
        lines = [
            f"bench-diff: {self.old_run_at} -> {self.new_run_at} "
            f"(threshold {self.threshold * 100:.0f}%)"
        ]
        if not self.deltas:
            lines.append("  no benchmark appears with timings in both runs")
        width = max((len(d.name) for d in self.deltas), default=0)
        for delta in sorted(self.deltas, key=lambda d: -d.ratio):
            flag = " "
            if delta.ratio > 1.0 + self.threshold:
                flag = "REGRESSION"
            elif delta.ratio < 1.0 - self.threshold:
                flag = "improved"
            lines.append(
                f"  {delta.name:<{width}}  {delta.old_s * 1e3:10.3f}ms"
                f" -> {delta.new_s * 1e3:10.3f}ms  {delta.delta_pct:+7.1f}%  {flag}"
            )
        if self.skipped:
            lines.append(f"  ({len(self.skipped)} benchmark(s) skipped: "
                         "no timings in one of the runs)")
        count = len(self.regressions)
        lines.append(
            "RESULT: no regressions beyond threshold" if count == 0
            else f"RESULT: {count} REGRESSION(S) beyond threshold"
        )
        return "\n".join(lines)


def diff_last_two(
    history: list[dict], threshold: float = DEFAULT_THRESHOLD
) -> DiffReport:
    """Compare the last two history entries; raises ValueError on <2."""
    if len(history) < 2:
        raise ValueError(
            f"bench-diff needs at least two history entries, have {len(history)}"
        )
    old, new = history[-2], history[-1]
    old_benches = old.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    deltas: list[BenchDelta] = []
    skipped: list[str] = []
    for name in sorted(set(old_benches) & set(new_benches)):
        old_median = old_benches[name].get("median_s")
        new_median = new_benches[name].get("median_s")
        if old_median is None or new_median is None:
            skipped.append(name)
            continue
        deltas.append(BenchDelta(name, old_median, new_median))
    return DiffReport(
        old.get("run_at", "?"), new.get("run_at", "?"), deltas, threshold,
        skipped,
    )

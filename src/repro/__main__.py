"""Interactive SQL shell and observability CLI:  python -m repro

Without arguments, a minimal REPL over :class:`repro.Database` for
exploring the engine and the paper's optimizations.  Dot-commands:

  .help                     this text
  .profile [name]           show / set the optimizer profile
  .explain <sql>            optimized plan (physical operator tree)
  .explain! <sql>           unoptimized (bound) logical plan
  .analyze <sql>            EXPLAIN ANALYZE (actual rows and timings)
  .trace <sql>              optimize under tracing; print the rewrite trace
  .spans <sql>              run under span tracing; print the span tree
  .stats <sql>              plan statistics (the Fig. 3-style counters)
  .metrics                  engine metrics snapshot
  .doctor                   plan-feedback report (misestimates, memory,
                            regressed shapes)
  .slow [threshold_ms]      show / configure the slow-query log
  .verify <sql>             §7.3 declared-cardinality verification
  .tables / .views          catalog listing
  .demo                     load a small demo schema
  .quit

Subcommands (run against the built-in demo schema):

  python -m repro explain [--analyze] [--profile NAME] [--no-optimize] SQL
  python -m repro trace   [--profile NAME] [--json] SQL
  python -m repro metrics [--profile NAME] [--format table|prometheus|json] [SQL ...]
  python -m repro doctor  [--top N] [--profile NAME] [SQL ...]
  python -m repro serve-metrics [--port N] [--profile NAME]
  python -m repro serve [--port N] [--max-concurrent N] [--max-queue N]
                        [--rate QPS] [--timeout SECONDS] [--profile NAME]
                        [--plan-cache-size N]
  python -m repro bench-diff [--history PATH] [--threshold PCT]
  python -m repro chaos [--seed N] [--ops N] [--fsync POLICY] [--wal-dir DIR]
                        [--batch-size N] [--threads N] [--rounds N]
  python -m repro fuzz  [--runs N] [--seed N] [--time-budget SECONDS]
                        [--corpus-dir DIR] [--profile NAME] [--no-reduce]
  python -m repro replay CAPTURE.jsonl [--check-digests] [--profile NAME]
                        [--batch-size N] [--threshold PCT] [--history PATH]
"""

from __future__ import annotations

import sys

from . import Database
from .errors import ReproError


def format_result(result, max_rows: int = 50) -> str:
    if not result.column_names:
        return "(no columns)"
    rows = result.rows[:max_rows]
    headers = result.column_names
    widths = [
        max(len(h), *(len(str(r[i])) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows)} rows total)")
    else:
        lines.append(f"({len(result.rows)} row(s))")
    return "\n".join(lines)


DEMO_SQL = [
    "create table customer (c_id int primary key, c_name varchar(30), c_tier int)",
    "create table orders (o_id int primary key, o_cust int not null, "
    "o_total decimal(12,2), o_status varchar(1) not null)",
    "insert into customer values (1,'ACME',1),(2,'Globex',2),(3,'Initech',1)",
    "insert into orders values (10,1,100.00,'N'),(11,1,250.50,'P'),"
    "(12,2,75.25,'N'),(13,3,990.00,'P')",
    "create view orderview as select o.o_id, o.o_total, o.o_status, c.c_name "
    "from orders o left outer many to one join customer c on o.o_cust = c.c_id",
]


def run_command(db: Database, line: str) -> bool:
    """Handle one input line; returns False to exit."""
    stripped = line.strip()
    if not stripped:
        return True
    if stripped in (".quit", ".exit", "\\q"):
        return False
    try:
        if stripped == ".help":
            print(__doc__)
        elif stripped.startswith(".profile"):
            parts = stripped.split(None, 1)
            if len(parts) == 2:
                db.set_profile(parts[1])
            print(f"optimizer profile: {db.profile}")
        elif stripped.startswith(".explain!"):
            print(db.explain(stripped[len(".explain!"):].strip(), optimize=False))
        elif stripped.startswith(".explain"):
            print(db.explain(stripped[len(".explain"):].strip()))
        elif stripped.startswith(".analyze"):
            print(db.explain(stripped[len(".analyze"):].strip(), analyze=True))
        elif stripped.startswith(".trace"):
            sql = stripped[len(".trace"):].strip()
            was_tracing = db.tracing
            db.tracing = True
            try:
                db.query(sql)
            finally:
                db.tracing = was_tracing
            assert db.last_trace is not None
            print(db.last_trace.report())
        elif stripped.startswith(".spans"):
            sql = stripped[len(".spans"):].strip()
            was_tracing = db.tracing
            db.tracing = True
            try:
                db.query(sql)
            finally:
                db.tracing = was_tracing
            from .observability import render_span_tree

            root = db.spans.last_root
            assert root is not None
            print(render_span_tree(root))
        elif stripped == ".metrics":
            print(db.metrics.render())
        elif stripped == ".doctor":
            from .observability import doctor_report

            print(doctor_report(db))
        elif stripped.startswith(".slow"):
            argument = stripped[len(".slow"):].strip()
            if argument:
                threshold_ms = float(argument)
                db.slow_queries.configure(
                    threshold_s=threshold_ms / 1e3 if threshold_ms >= 0 else None
                )
                print(f"slow-query threshold: {threshold_ms:g}ms"
                      if threshold_ms >= 0 else "slow-query log disabled")
            else:
                print(db.slow_queries.render())
        elif stripped.startswith(".stats"):
            sql = stripped[len(".stats"):].strip()
            print("bound    :", db.plan_statistics(sql, optimize=False).summary())
            print("optimized:", db.plan_statistics(sql).summary())
        elif stripped.startswith(".verify"):
            from .tools import verify_join_cardinalities

            print(verify_join_cardinalities(db, stripped[len(".verify"):].strip()).summary())
        elif stripped == ".tables":
            for table in db.catalog.tables():
                print(f"  {table.schema.name}  ({len(table)} row versions)")
        elif stripped == ".views":
            for view in db.catalog.views():
                print(f"  {view.name}")
        elif stripped == ".demo":
            for sql in DEMO_SQL:
                db.execute(sql)
            print("demo schema loaded: customer, orders, orderview")
        elif stripped.startswith("."):
            print(f"unknown command {stripped.split()[0]!r}; try .help")
        else:
            outcome = db.execute(stripped.rstrip(";"))
            if outcome is None:
                print("ok")
            elif isinstance(outcome, int):
                print(f"{outcome} row(s) affected")
            else:
                print(format_result(outcome))
    except ReproError as error:
        print(f"error: {error}")
    return True


DEMO_QUERIES = [
    "select o_id, c_name from orderview where o_status = 'N'",
    "select o_id, o_total from orderview limit 2",
    "select count(*) from orderview",
]


def _demo_db(profile: str | None, plan_cache_size: int | None = None) -> Database:
    db = (Database() if plan_cache_size is None
          else Database(plan_cache_size=plan_cache_size))
    if profile:
        db.set_profile(profile)
    for sql in DEMO_SQL:
        db.execute(sql)
    return db


def run_subcommand(argv: list[str]) -> int:
    """The non-interactive observability surface.

    Runs against the demo schema (customer, orders, orderview) so the
    commands work out of the box; real applications use the library API.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HTAP engine observability CLI (runs on the demo schema)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_explain = sub.add_parser("explain", help="print a query plan")
    p_explain.add_argument("sql", help="SELECT statement over the demo schema")
    p_explain.add_argument("--analyze", action="store_true",
                           help="execute and annotate actual rows/timings")
    p_explain.add_argument("--profile", default=None,
                           help="optimizer capability profile (default: hana)")
    p_explain.add_argument("--no-optimize", action="store_true",
                           help="show the bound plan without optimization")

    p_trace = sub.add_parser("trace", help="print the rewrite trace of a query")
    p_trace.add_argument("sql")
    p_trace.add_argument("--profile", default=None)
    p_trace.add_argument("--json", action="store_true",
                         help="dump the trace (with the span tree) as JSON")

    p_metrics = sub.add_parser(
        "metrics", help="run queries (default: a demo workload), dump metrics"
    )
    p_metrics.add_argument("sql", nargs="*",
                           help="queries to run before the snapshot")
    p_metrics.add_argument("--profile", default=None)
    p_metrics.add_argument("--format", default="table",
                           choices=("table", "prometheus", "json"),
                           help="output format (default: table)")

    p_doctor = sub.add_parser(
        "doctor",
        help="run a workload (default: demo queries incl. a deliberately "
             "misestimated one), then print the plan-feedback report",
    )
    p_doctor.add_argument("sql", nargs="*",
                          help="queries to run before the report")
    p_doctor.add_argument("--top", type=int, default=5,
                          help="entries per section (default: 5)")
    p_doctor.add_argument("--profile", default=None)

    p_serve = sub.add_parser(
        "serve-metrics",
        help="run the demo workload, then serve /metrics, /trace, /slow over HTTP",
    )
    p_serve.add_argument("--port", type=int, default=9464,
                         help="listen port (default: 9464; 0 picks a free port)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--profile", default=None)

    p_gateway = sub.add_parser(
        "serve",
        help="serve the demo schema over the HTTP JSON gateway "
             "(POST /v1/query, /v1/session; GET /stats, /healthz)",
    )
    p_gateway.add_argument("--port", type=int, default=8080,
                           help="listen port (default: 8080; 0 picks a free port)")
    p_gateway.add_argument("--host", default="127.0.0.1")
    p_gateway.add_argument("--profile", default=None)
    p_gateway.add_argument("--max-concurrent", type=int, default=8,
                           help="statements running at once (default: 8)")
    p_gateway.add_argument("--max-queue", type=int, default=32,
                           help="admission queue bound; beyond it requests "
                                "are shed with 429 (default: 32)")
    p_gateway.add_argument("--rate", type=float, default=None, metavar="QPS",
                           help="per-tenant token-bucket rate limit "
                                "(default: unlimited)")
    p_gateway.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="default statement timeout, queue wait "
                                "included (default: none)")
    p_gateway.add_argument("--plan-cache-size", type=int, default=None,
                           metavar="N",
                           help="parameterized plan-cache capacity shared "
                                "by all tenants (default: 128; 0 disables)")

    p_diff = sub.add_parser(
        "bench-diff",
        help="compare the last two benchmark runs in BENCH_history.json",
    )
    p_diff.add_argument("--history", default=None,
                        help="history file (default: benchmarks/results/BENCH_history.json)")
    p_diff.add_argument("--threshold", type=float, default=None,
                        help="regression threshold in percent (default: 20)")

    p_chaos = sub.add_parser(
        "chaos",
        help="kill-and-recover chaos campaign against the durable WAL",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="PRNG seed (fixed seed = reproducible campaign)")
    p_chaos.add_argument("--ops", type=int, default=60,
                         help="operations to attempt (default: 60)")
    p_chaos.add_argument("--fsync", default="commit",
                         choices=("always", "commit", "never"),
                         help="WAL fsync policy (default: commit)")
    p_chaos.add_argument("--wal-dir", default=None,
                         help="WAL directory (default: a fresh temp dir)")
    p_chaos.add_argument("--batch-size", type=int, default=None,
                         help="streaming-executor batch size for every "
                              "database the campaign opens (default: 1024)")
    p_chaos.add_argument("--threads", type=int, default=0, metavar="N",
                         help="run the concurrency variant with N writer "
                              "threads through the serving layer "
                              "(0 = single-threaded campaign; default)")
    p_chaos.add_argument("--rounds", type=int, default=3,
                         help="kill-and-recover rounds for --threads "
                              "(default: 3)")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="print only the final summary line")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="randomized differential/metamorphic testing of the optimizer "
             "and the streaming executor",
    )
    p_fuzz.add_argument("--runs", type=int, default=200,
                        help="cases to generate and check (default: 200)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed; (seed, runs, profile) fully "
                             "determines the workload")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop generating new cases after this many seconds")
    p_fuzz.add_argument("--corpus-dir", default=None,
                        help="write minimized repros for any discrepancy "
                             "here as replayable .json files")
    p_fuzz.add_argument("--profile", default="hana",
                        help="optimizer capability profile (default: hana)")
    p_fuzz.add_argument("--no-reduce", action="store_true",
                        help="keep failing cases as generated (skip reduction)")
    p_fuzz.add_argument("--metrics-format", default=None,
                        choices=("table", "prometheus", "json"),
                        help="also dump the fuzz.* campaign metrics")
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="print only the final summary line")

    p_replay = sub.add_parser(
        "replay",
        help="re-execute a captured workload (Database(capture_dir=...)), "
             "verify result digests, report per-shape latency deltas",
    )
    p_replay.add_argument("path", help="capture file (JSONL)")
    p_replay.add_argument("--check-digests", dest="check_digests",
                          action="store_true", default=True,
                          help="verify result digests (default)")
    p_replay.add_argument("--no-check-digests", dest="check_digests",
                          action="store_false",
                          help="skip digest verification (timing-only replay)")
    p_replay.add_argument("--profile", default=None,
                          help="optimizer profile (default: the capture header's)")
    p_replay.add_argument("--batch-size", type=int, default=None,
                          help="streaming-executor batch size for the replay")
    p_replay.add_argument("--threshold", type=float, default=None,
                          help="latency regression threshold in percent "
                               "(default: 50)")
    p_replay.add_argument("--history", default=None,
                          help="also append the replayed medians to this "
                               "BENCH_history.json file")

    options = parser.parse_args(argv)
    if options.command == "bench-diff":
        return _run_bench_diff(options)
    if options.command == "chaos":
        return _run_chaos(options)
    if options.command == "fuzz":
        return _run_fuzz(options)
    if options.command == "replay":
        return _run_replay(options)
    try:
        db = _demo_db(options.profile,
                      getattr(options, "plan_cache_size", None))
        if options.command == "explain":
            print(db.explain(options.sql, optimize=not options.no_optimize,
                             analyze=options.analyze))
        elif options.command == "trace":
            db.tracing = True
            db.query(options.sql)
            assert db.last_trace is not None
            if options.json:
                import json

                print(json.dumps(db.last_trace.to_dict(spans=True), indent=1,
                                 default=str))
            else:
                print(db.last_trace.report())
        elif options.command == "serve-metrics":
            return _run_serve_metrics(db, options)
        elif options.command == "serve":
            return _run_serve(db, options)
        elif options.command == "doctor":
            return _run_doctor(db, options)
        else:
            for sql in options.sql or DEMO_QUERIES:
                db.query(sql)
            _print_metrics(db, options.format)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


#: A query whose range predicate the System-R heuristics badly overtrim
#: (two range conjuncts -> 1/9 selectivity, but every demo order matches),
#: so the doctor report always has a misestimate to show.
DOCTOR_MISESTIMATED_SQL = (
    "select o_id from orderview where o_total > -1 and o_total < 1000000"
)


def _run_doctor(db: Database, options) -> int:
    from .observability import doctor_report

    workload = list(options.sql) or DEMO_QUERIES + [DOCTOR_MISESTIMATED_SQL]
    # Run each query a few times so the per-shape windows have samples.
    for _ in range(3):
        for sql in workload:
            db.query(sql)
    print(doctor_report(db, top=options.top))
    return 0


def _print_metrics(db: Database, fmt: str) -> None:
    if fmt == "prometheus":
        from .observability import render_prometheus

        print(render_prometheus(db.metrics), end="")
    elif fmt == "json":
        from .observability import render_metrics_json

        print(render_metrics_json(db.metrics))
    else:
        print(db.metrics.render())


def _run_serve_metrics(db: Database, options) -> int:
    from .observability import MetricsServer

    db.tracing = True
    db.slow_queries.configure(threshold_s=0.0)
    for sql in DEMO_QUERIES:
        db.query(sql)
    server = MetricsServer(db, port=options.port, host=options.host)
    print(f"serving metrics on {server.url}/metrics "
          "(also /metrics.json, /trace, /slow, /healthz; Ctrl-C to stop)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_serve(db: Database, options) -> int:
    import signal

    from .serving import GatewayServer

    server = GatewayServer(
        db,
        port=options.port,
        host=options.host,
        max_concurrent=options.max_concurrent,
        max_queue=options.max_queue,
        rate_per_s=options.rate,
        default_timeout_s=options.timeout,
    )
    server.start()

    # SIGTERM drains too: backgrounded shells ignore SIGINT, so `kill`
    # is how supervisors and CI stop the gateway.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # not the main thread (embedded use)
        pass
    print(f"serving SQL on {server.url}/v1/query "
          "(also /v1/session, /stats, /healthz; Ctrl-C to drain and stop)",
          flush=True)
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=1)
    except KeyboardInterrupt:
        pass
    finally:
        drained = server.close()
        print("gateway stopped (drained)" if drained
              else "gateway stopped (drain timed out)", flush=True)
    return 0


def _run_chaos(options) -> int:
    import tempfile

    from .faults import run_chaos, run_concurrency_chaos

    wal_dir = options.wal_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    log = None if options.quiet else print
    try:
        if options.threads > 0:
            report = run_concurrency_chaos(
                wal_dir,
                seed=options.seed,
                rounds=options.rounds,
                writers=options.threads,
                fsync=options.fsync,
                log=log,
            )
        else:
            report = run_chaos(
                wal_dir,
                seed=options.seed,
                ops=options.ops,
                fsync=options.fsync,
                batch_size=options.batch_size,
                log=log,
            )
    except AssertionError as error:
        print(f"chaos: INVARIANT VIOLATED: {error}", file=sys.stderr)
        return 1
    if options.quiet:
        print(report.summary())
    return 0


def _run_fuzz(options) -> int:
    from .errors import ReproError as _ReproError
    from .fuzz import run_fuzz
    from .observability import MetricsRegistry

    metrics = MetricsRegistry()
    try:
        report = run_fuzz(
            seed=options.seed,
            runs=options.runs,
            time_budget_s=options.time_budget,
            profile=options.profile,
            corpus_dir=options.corpus_dir,
            metrics=metrics,
            reduce=not options.no_reduce,
            log=None if options.quiet else print,
        )
    except _ReproError as error:
        print(f"fuzz: generator error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    for bug in report.bugs:
        print(f"fuzz: DISCREPANCY {bug.summary()}", file=sys.stderr)
    if options.metrics_format == "prometheus":
        from .observability import render_prometheus

        print(render_prometheus(metrics), end="")
    elif options.metrics_format == "json":
        from .observability import render_metrics_json

        print(render_metrics_json(metrics))
    elif options.metrics_format == "table":
        print(metrics.render())
    return 1 if report.bugs else 0


def _run_replay(options) -> int:
    from .capture import replay_workload
    from .capture.replay import REPLAY_THRESHOLD

    threshold = (options.threshold / 100.0 if options.threshold is not None
                 else REPLAY_THRESHOLD)
    try:
        report = replay_workload(
            options.path,
            check_digests=options.check_digests,
            profile=options.profile,
            batch_size=options.batch_size,
            threshold=threshold,
            history_path=options.history,
        )
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _run_bench_diff(options) -> int:
    from .bench.history import (
        DEFAULT_HISTORY, DEFAULT_THRESHOLD, diff_last_two, load_history,
    )

    path = options.history or DEFAULT_HISTORY
    threshold = (options.threshold / 100.0 if options.threshold is not None
                 else DEFAULT_THRESHOLD)
    try:
        history = load_history(path)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if len(history) < 2:
        print(f"bench-diff: need two runs in {path}, have {len(history)} — "
              "run the benchmarks twice first")
        return 0
    report = diff_last_two(history, threshold)
    print(report.render())
    return 1 if report.regressions else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv:
        return run_subcommand(argv)
    print("repro — HTAP engine with the VDM optimizer "
          "(.help for commands, .demo for sample data)")
    db = Database()
    try:
        while True:
            try:
                line = input("repro> ")
            except EOFError:
                break
            if not run_command(db, line):
                break
    except KeyboardInterrupt:
        pass
    print("bye")
    return 0


if __name__ == "__main__":
    sys.exit(main())

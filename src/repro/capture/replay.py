"""Replay a captured workload against the current build.

Every statement record is re-executed in capture order on a fresh
:class:`~repro.database.Database`.  Three things come out:

1. **Digest verification** — each query's order-insensitive result digest
   must match the captured one (``check_digests``); a mismatch is a
   correctness regression attributed to one exact SQL statement.
2. **Per-shape latency deltas** — captured vs replayed medians grouped by
   the normalized shape hash, rendered through the same
   :class:`~repro.bench.history.DiffReport` machinery as
   ``python -m repro bench-diff`` (and optionally appended to a
   ``BENCH_history.json`` file), so a captured production workload becomes
   a regression-attribution benchmark.
3. **Error-statement parity** — a statement that failed at capture time is
   expected to fail on replay too (and vice versa).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from ..bench.history import DiffReport, append_run, diff_last_two
from ..errors import ReproError
from .recorder import load_capture, result_digest

REPLAY_THRESHOLD = 0.50   # shapes are single-statement samples: be tolerant


@dataclass
class DigestMismatch:
    seq: int
    sql: str
    expected: str
    actual: str

    def __str__(self) -> str:
        return (f"seq {self.seq}: digest mismatch for {self.sql!r} "
                f"(captured {self.expected[:23]}…, replayed {self.actual[:23]}…)")


@dataclass
class ReplayError:
    seq: int
    sql: str
    detail: str

    def __str__(self) -> str:
        return f"seq {self.seq}: {self.detail} ({self.sql!r})"


@dataclass
class ReplayReport:
    path: str
    statements: int = 0
    queries: int = 0
    digests_checked: int = 0
    mismatches: list[DigestMismatch] = field(default_factory=list)
    errors: list[ReplayError] = field(default_factory=list)
    diff: DiffReport | None = None
    shape_examples: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors

    def summary(self) -> str:
        verdict = "ok" if self.ok else (
            f"{len(self.mismatches)} digest mismatch(es), "
            f"{len(self.errors)} error(s)"
        )
        return (f"replay: {self.statements} statement(s), {self.queries} "
                f"query(ies), {self.digests_checked} digest(s) checked — {verdict}")

    def render(self) -> str:
        lines = [self.summary()]
        for mismatch in self.mismatches:
            lines.append(f"  MISMATCH {mismatch}")
        for error in self.errors:
            lines.append(f"  ERROR {error}")
        if self.diff is not None:
            lines.append("")
            lines.append(self.diff.render())
            if self.shape_examples:
                lines.append("shapes:")
                for shape, sql in sorted(self.shape_examples.items()):
                    example = sql if len(sql) <= 90 else sql[:87] + "..."
                    lines.append(f"  {shape}  {example}")
        return "\n".join(lines)


def replay_workload(
    path: str,
    check_digests: bool = True,
    profile: str | None = None,
    batch_size: int | None = None,
    threshold: float = REPLAY_THRESHOLD,
    history_path: str | None = None,
) -> ReplayReport:
    """Re-execute the capture at ``path``; see the module docstring."""
    from ..database import Database

    header, records = load_capture(path)
    if profile is None and header is not None:
        profile = header.get("profile") or None
    kwargs: dict = {}
    if profile:
        kwargs["profile"] = profile
    if batch_size is not None:
        kwargs["batch_size"] = batch_size
    db = Database(**kwargs)
    report = ReplayReport(path=path)
    captured_by_shape: dict[str, list[float]] = {}
    replayed_by_shape: dict[str, list[float]] = {}
    try:
        for record in records:
            sql = record.get("sql")
            if not sql:
                continue
            seq = record.get("seq", report.statements + 1)
            kind = record.get("kind", "query")
            report.statements += 1
            started = time.perf_counter()
            try:
                outcome = db.execute(sql)
            except ReproError as exc:
                if kind == "error":
                    continue    # failed then, fails now: parity holds
                report.errors.append(ReplayError(
                    seq, sql, f"replay raised {type(exc).__name__}: {exc}"
                ))
                continue
            elapsed_s = time.perf_counter() - started
            if kind == "error":
                report.errors.append(ReplayError(
                    seq, sql,
                    f"captured as an error ({record.get('error')}) but replayed clean",
                ))
                continue
            shape = record.get("shape")
            if shape and record.get("elapsed_ms") is not None:
                captured_by_shape.setdefault(shape, []).append(
                    record["elapsed_ms"] / 1e3
                )
                replayed_by_shape.setdefault(shape, []).append(elapsed_s)
                report.shape_examples.setdefault(shape, sql)
            if kind == "query" and outcome is not None and not isinstance(outcome, int):
                report.queries += 1
                expected = record.get("digest")
                if check_digests and expected:
                    actual = result_digest(outcome)
                    report.digests_checked += 1
                    if actual != expected:
                        report.mismatches.append(
                            DigestMismatch(seq, sql, expected, actual)
                        )
    finally:
        db.close()
    report.diff = _latency_diff(
        path, captured_by_shape, replayed_by_shape, threshold, history_path
    )
    return report


def _latency_diff(
    path: str,
    captured: dict[str, list[float]],
    replayed: dict[str, list[float]],
    threshold: float,
    history_path: str | None,
) -> DiffReport | None:
    """Per-shape medians as two bench-history entries -> one DiffReport."""
    shapes = sorted(set(captured) & set(replayed))
    if not shapes:
        return None
    old_entry = {
        "run_at": f"captured:{path}",
        "benchmarks": {
            f"replay::{shape}": {
                "median_s": statistics.median(captured[shape]),
                "mean_s": statistics.fmean(captured[shape]),
                "rounds": len(captured[shape]),
            }
            for shape in shapes
        },
    }
    new_entry = {
        "run_at": "replayed",
        "benchmarks": {
            f"replay::{shape}": {
                "median_s": statistics.median(replayed[shape]),
                "mean_s": statistics.fmean(replayed[shape]),
                "rounds": len(replayed[shape]),
            }
            for shape in shapes
        },
    }
    if history_path is not None:
        # Let append_run stamp the real wall-clock time in the history file.
        append_run({"benchmarks": new_entry["benchmarks"]}, history_path)
    return diff_last_two([old_entry, new_entry], threshold)

"""Workload capture and replay.

:class:`WorkloadRecorder` (wired via ``Database(capture_dir=...)``) appends
one durable JSONL record per executed statement — SQL, timings, status,
shape hash, and a result digest for queries.  :func:`replay_workload`
re-executes a captured file against the current build, verifies the
digests, and reports per-shape latency deltas through the existing
``bench-diff`` machinery (``python -m repro replay``).
"""

from .recorder import WorkloadRecorder, result_digest  # noqa: F401
from .replay import ReplayReport, replay_workload  # noqa: F401

"""Durable JSONL workload capture.

A capture file is a plain-text, append-only log: one header line followed
by one JSON object per executed statement.  Statement records carry::

    {"kind": "query" | "dml" | "ddl" | "error",
     "seq": 3, "query_id": "q3", "sql": "...", "shape": "ab12...",
     "started_at": 1754640000.123, "elapsed_ms": 1.84,
     "rows": 5, "digest": "sha256:...",          # queries only
     "rowcount": 2,                              # DML only
     "error": "ConstraintError: ..."}            # kind == "error"

The digest is order-insensitive (a sha256 over the sorted canonicalized
rows plus the column names), so replays on a build with a different —
equally correct — physical plan still verify, while any wrong *content*
is caught.  Appends are flushed per record: a capture survives the
process dying mid-workload, which is the point.
"""

from __future__ import annotations

import datetime
import decimal
import hashlib
import json
import os

from ..catalog.systables import SYS_PREFIX
from ..sql.normalize import shape_hash

CAPTURE_FORMAT = 1
DEFAULT_FILENAME = "workload.jsonl"


def _touches_sys(sql: str) -> bool:
    """Queries over ``sys.*`` read session state (log contents, timings),
    so their results are inherently non-reproducible on replay."""
    return SYS_PREFIX in sql.lower()


def canonical_value(value: object) -> str:
    """A type-tagged, deterministic rendering of one cell."""
    if value is None:
        return "␀"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, decimal.Decimal):
        return f"d:{value.normalize()}"
    if isinstance(value, (datetime.date, datetime.datetime)):
        return f"t:{value.isoformat()}"
    return f"s:{value}"


def result_digest(result) -> str:
    """Order-insensitive sha256 digest of a :class:`QueryResult`."""
    rows = sorted(
        "\x1f".join(canonical_value(v) for v in row) for row in result.rows
    )
    payload = "\x1d".join(result.column_names) + "\x1e" + "\x1e".join(rows)
    return "sha256:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


class WorkloadRecorder:
    """Appends one JSONL record per statement into ``capture_dir``."""

    def __init__(self, capture_dir: str, filename: str = DEFAULT_FILENAME,
                 profile: str | None = None):
        os.makedirs(capture_dir, exist_ok=True)
        self.path = os.path.join(capture_dir, filename)
        self._seq = 0
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write({
                "kind": "header",
                "format": CAPTURE_FORMAT,
                "profile": profile,
            })

    def record_statement(self, sql: str, started_at: float, elapsed_s: float,
                         outcome) -> None:
        """Log one successful statement; ``outcome`` is the return of
        ``Database.execute`` (QueryResult / rowcount / None)."""
        entry = self._base(sql, started_at, elapsed_s)
        if outcome is None:
            entry["kind"] = "ddl"
        elif isinstance(outcome, int):
            entry["kind"] = "dml"
            entry["rowcount"] = outcome
        else:
            entry["kind"] = "query"
            entry["rows"] = len(outcome.rows)
            if _touches_sys(sql):
                entry["volatile"] = True   # session-dependent: no digest
            else:
                entry["digest"] = result_digest(outcome)
            stats = getattr(outcome, "stats", None)
            if stats is not None and stats.query_id:
                entry["query_id"] = stats.query_id
        self._write(entry)

    def record_error(self, sql: str, started_at: float, elapsed_s: float,
                     error: BaseException) -> None:
        entry = self._base(sql, started_at, elapsed_s)
        entry["kind"] = "error"
        entry["error"] = f"{type(error).__name__}: {error}"
        self._write(entry)

    def _base(self, sql: str, started_at: float, elapsed_s: float) -> dict:
        self._seq += 1
        return {
            "seq": self._seq,
            "sql": sql,
            "shape": shape_hash(sql),
            "started_at": started_at,
            "elapsed_ms": elapsed_s * 1e3,
        }

    def _write(self, entry: dict) -> None:
        json.dump(entry, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None  # type: ignore[assignment]


def load_capture(path: str) -> tuple[dict | None, list[dict]]:
    """Read a capture file into (header, statement records).

    Tolerates a torn trailing line (the process may have died mid-append —
    the capture is still usable up to that point).
    """
    header: dict | None = None
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break
            if entry.get("kind") == "header":
                header = entry
            else:
                records.append(entry)
    return header, records
